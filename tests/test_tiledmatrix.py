"""Matrix containers and view navigation."""

import numpy as np
import pytest

from repro.layouts.tiled import TiledLayout
from repro.matrix.convert import to_tiled
from repro.matrix.tile import Tiling
from repro.matrix.tiledmatrix import DenseMatrix, TiledMatrix
from tests.conftest import ALL_RECURSIVE


class TestTiledMatrix:
    def test_zeros(self):
        tm = TiledMatrix.zeros("LZ", 2, 3, 4)
        assert tm.shape == (12, 16)
        assert tm.padded_shape == (12, 16)
        assert tm.buf.shape == (192,)
        assert (tm.buf == 0).all()

    def test_logical_dims(self):
        tm = TiledMatrix.zeros("LZ", 2, 3, 4, m=10, n=13)
        assert tm.shape == (10, 13)
        assert tm.padded_shape == (12, 16)

    def test_dtype(self):
        tm = TiledMatrix.zeros("LZ", 1, 2, 2, dtype=np.float32)
        assert tm.dtype == np.float32

    def test_getsetitem(self):
        tm = TiledMatrix.zeros("LH", 2, 3, 3)
        tm[5, 7] = 2.5
        assert tm[5, 7] == 2.5
        assert tm.buf[tm.layout.address_scalar(5, 7)] == 2.5

    def test_index_bounds(self):
        tm = TiledMatrix.zeros("LZ", 1, 2, 2, m=3, n=3)
        with pytest.raises(IndexError):
            tm[3, 0]
        with pytest.raises(IndexError):
            tm[0, 3] = 1.0

    def test_buffer_length_checked(self):
        lay = TiledLayout.create("LZ", 1, 2, 2)
        with pytest.raises(ValueError):
            TiledMatrix(lay, np.zeros(5), 4, 4)

    def test_requires_recursive_curve(self):
        lay = TiledLayout.create("LC", 1, 2, 2)
        with pytest.raises(TypeError):
            TiledMatrix(lay, np.zeros(16), 4, 4)

    def test_logical_dims_checked(self):
        with pytest.raises(ValueError):
            TiledMatrix.zeros("LZ", 1, 2, 2, m=5, n=4)


@pytest.mark.parametrize("curve", ALL_RECURSIVE)
class TestQuadView:
    def test_root_geometry(self, curve):
        tm = TiledMatrix.zeros(curve, 3, 2, 5)
        v = tm.root_view()
        assert v.rows == 16 and v.cols == 40
        assert v.n_tiles == 64
        assert not v.is_leaf
        assert v.is_contiguous

    def test_quadrant_recursion_to_leaf(self, curve):
        tm = TiledMatrix.zeros(curve, 2, 3, 3)
        v = tm.root_view()
        q = v.quadrant(1, 0).quadrant(0, 1)
        assert q.is_leaf
        assert q.leaf_array().shape == (3, 3)

    def test_quadrants_disjoint_and_cover(self, curve):
        tm = TiledMatrix.zeros(curve, 2, 2, 2)
        v = tm.root_view()
        offsets = set()
        for q in v.quadrants():
            offsets.update(range(q.tile_off, q.tile_off + q.n_tiles))
        assert offsets == set(range(16))

    def test_buffer_is_view(self, curve):
        tm = TiledMatrix.zeros(curve, 2, 2, 2)
        v = tm.root_view().quadrant(0, 0)
        v.buffer()[:] = 7.0
        assert (tm.buf[v.tile_off * 4 : (v.tile_off + v.n_tiles) * 4] == 7.0).all()

    def test_leaf_array_is_fortran_view(self, curve, rng):
        a = rng.standard_normal((8, 8))
        tm = to_tiled(a, curve, Tiling(1, 4, 4, 8, 8))
        leaf = tm.root_view().quadrant(1, 1)
        np.testing.assert_array_equal(leaf.leaf_array(), a[4:, 4:])
        assert leaf.leaf_array().flags["F_CONTIGUOUS"]

    def test_leaf_guard(self, curve):
        tm = TiledMatrix.zeros(curve, 1, 2, 2)
        with pytest.raises(ValueError):
            tm.root_view().leaf_array()
        with pytest.raises(ValueError):
            tm.root_view().quadrant(0, 0).quadrant(0, 0)

    def test_alloc_like(self, curve):
        tm = TiledMatrix.zeros(curve, 2, 3, 4)
        q = tm.root_view().quadrant(1, 1)
        t = q.alloc_like()
        assert t.rows == q.rows and t.cols == q.cols
        assert t.orientation == 0
        assert t.matrix is not tm

    def test_to_array_roundtrip(self, curve, rng):
        a = rng.standard_normal((12, 12))
        tm = to_tiled(a, curve, Tiling(2, 3, 3, 12, 12))
        np.testing.assert_array_equal(tm.root_view().to_array(), a)


class TestDenseMatrix:
    def test_zeros_fortran(self):
        dm = DenseMatrix.zeros(2, 4, 4)
        assert dm.array.flags["F_CONTIGUOUS"]
        assert dm.padded_shape == (16, 16)

    def test_zeros_c_order(self):
        dm = DenseMatrix.zeros(2, 4, 4, order="C")
        assert dm.array.flags["C_CONTIGUOUS"]

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            DenseMatrix(np.zeros((12, 16)), 12, 16, 4, 4)  # 3x4 grid not square
        with pytest.raises(ValueError):
            DenseMatrix(np.zeros((12, 12)), 12, 12, 4, 4)  # 3x3 not pow2

    def test_dense_view_quadrants(self, rng):
        dm = DenseMatrix.zeros(2, 4, 4)
        dm.array[...] = rng.standard_normal((16, 16))
        v = dm.root_view()
        q = v.quadrant(1, 0)
        np.testing.assert_array_equal(q.array, dm.array[8:, :8])
        assert q.d == 1
        assert not q.is_leaf
        leaf = q.quadrant(0, 1)
        assert leaf.is_leaf
        np.testing.assert_array_equal(leaf.leaf_array(), dm.array[8:12, 4:8])

    def test_dense_view_strided_not_contiguous(self):
        dm = DenseMatrix.zeros(2, 4, 4)
        assert not dm.root_view().quadrant(0, 1).is_contiguous

    def test_alloc_like_fortran(self):
        dm = DenseMatrix.zeros(1, 4, 4)
        t = dm.root_view().quadrant(0, 0).alloc_like()
        assert t.array.flags["F_CONTIGUOUS"]
        assert t.rows == 4 and t.cols == 4

    def test_to_array_copies(self):
        dm = DenseMatrix.zeros(1, 2, 2)
        v = dm.root_view()
        arr = v.to_array()
        arr[0, 0] = 5
        assert dm.array[0, 0] == 0
