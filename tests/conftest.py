"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.layouts.registry import RECURSIVE_LAYOUTS


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")


#: Parametrization helper reused across layout tests.
ALL_RECURSIVE = list(RECURSIVE_LAYOUTS)
MULTI_ORIENTATION = ["LG", "LH"]
ALL_ALGORITHMS = ["standard", "strassen", "winograd"]
