"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.layouts.registry import RECURSIVE_LAYOUTS


@pytest.fixture(autouse=True)
def _repro_env_isolation():
    """Snapshot and restore every ``REPRO_*`` environment variable.

    Several code paths mutate the environment (``repro report --jobs``
    exports ``REPRO_JOBS`` for its nested subcommand; tests set knobs
    with plain ``os.environ`` writes), and without restoration a knob
    set by one test silently changes the behaviour of every test that
    runs after it in the same process.  The snapshot/restore pair lives
    in :mod:`repro.knobs` so it tracks the knob prefix in one place.
    """
    from repro import knobs

    snapshot = knobs.environ_snapshot()
    try:
        yield
    finally:
        knobs.environ_restore(snapshot)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def assert_race_free():
    """Run the determinacy-race sanitizer on one algorithm x layout and
    assert it comes back clean (races, bounds and bijection all empty);
    returns the full report for further assertions."""
    from repro.sanitize import sanitize_multiply

    def check(algorithm, layout, n=24, tile=8, **kwargs):
        report = sanitize_multiply(algorithm, layout, n, tile=tile, **kwargs)
        assert report.races == [], "\n".join(c.describe() for c in report.races)
        assert report.bounds == []
        assert report.bijection == []
        return report

    return check


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current figure drivers "
             "instead of asserting against them",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")


#: Parametrization helper reused across layout tests.
ALL_RECURSIVE = list(RECURSIVE_LAYOUTS)
MULTI_ORIENTATION = ["LG", "LH"]
ALL_ALGORITHMS = ["standard", "strassen", "winograd"]
