"""Differential engine + regression gate (repro.perf.compare, repro perf)."""

import json

import pytest

from repro import knobs
from repro.__main__ import main
from repro.perf.compare import (
    MIN_SAMPLES,
    REL_FLOOR,
    best_of,
    compare_records,
    noise_band,
    render_comparison,
    render_span_diff,
)
from repro.perf.history import HistoryStore, build_record, record_from_bench

BENCH = {
    "trace": {"accesses": 1000, "expand_seconds": 1.25,
              "warm_expand_seconds": 0.01},
    "engines": {
        "set_associative_8way": {"speedup": 10.0, "accesses_per_sec": 5.0e6},
    },
    "trace_synthesis": {"events": 500, "speedup": 7.0},
    "parallel_sweep": {"speedup": 2.0},
    "provenance": {"git": {"sha": "abc123"}, "machine": {"sha256": "m1"}},
}


def perturbed(factor_key: str, factor: float) -> dict:
    """BENCH with one flattened metric multiplied by ``factor``."""
    rec = record_from_bench(BENCH)
    metrics = dict(rec["metrics"])
    metrics[factor_key] = metrics[factor_key] * factor
    return build_record(metrics, source="perf_smoke",
                        manifest={"git": {"sha": "abc123"},
                                  "machine": {"sha256": "m1"}})


class TestBudgets:
    def test_budget_table_declared(self):
        budgets = knobs.declared_budgets()
        assert "trace.expand_seconds" in budgets
        assert budgets["trace.accesses"].direction == "exact"

    def test_glob_lookup_exact_wins(self):
        b = knobs.budget_for("engines.set_associative_8way.speedup")
        assert b is not None and b.direction == "higher_better"
        assert knobs.budget_for("no.such.key") is None

    def test_declare_budget_validates(self):
        with pytest.raises(ValueError):
            knobs.declare_budget("trace.accesses", direction="exact",
                                 max_regression=0.0, doc="dup")
        with pytest.raises(ValueError):
            knobs.declare_budget("x.y", direction="sideways",
                                 max_regression=0.0, doc="bad")


class TestNoiseBands:
    def test_floor_with_thin_history(self):
        assert noise_band([1.0]) == REL_FLOOR
        assert noise_band([]) == REL_FLOOR

    def test_mad_band_widens_for_noisy_keys(self):
        noisy = [1.0, 1.4, 0.7, 1.3, 0.8, 1.2] * 2
        assert len(noisy) >= MIN_SAMPLES
        assert noise_band(noisy) > REL_FLOOR

    def test_steady_history_keeps_floor(self):
        assert noise_band([1.0] * 10) == REL_FLOOR

    def test_best_of(self):
        assert best_of([3.0, 1.0, 2.0], "lower_better") == 1.0
        assert best_of([3.0, 1.0, 2.0], "higher_better") == 3.0
        assert best_of([3.0, 1.0, 2.0], "exact") == 2.0
        with pytest.raises(ValueError):
            best_of([], "lower_better")


class TestCompare:
    def test_identical_runs_pass(self):
        rec = record_from_bench(BENCH)
        cmp_ = compare_records(rec, rec, structural_only=False)
        assert cmp_["ok"]
        assert cmp_["summary"]["regressed"] == 0
        assert cmp_["summary"]["over_budget"] == []

    def test_injected_slowdown_flags_offending_key(self):
        rec = record_from_bench(BENCH)
        # The cold-expand budget is 2.0 (a 200% allowance for cold-cache
        # noise): a 2x slowdown is flagged as regressed with the key
        # named, but stays inside the budget...
        slow = perturbed("trace.expand_seconds", 2.0)
        cmp_ = compare_records(rec, slow, structural_only=False)
        assert cmp_["ok"]
        assert cmp_["keys"]["trace.expand_seconds"]["class"] == "regressed"
        # ...while a 4x slowdown bursts the budget and fails the gate.
        very_slow = perturbed("trace.expand_seconds", 4.0)
        cmp2 = compare_records(rec, very_slow, structural_only=False)
        assert not cmp2["ok"]
        assert "trace.expand_seconds" in cmp2["summary"]["over_budget"]

    def test_halved_speedup_gates(self):
        rec = record_from_bench(BENCH)
        bad = perturbed("engines.set_associative_8way.speedup", 0.5)
        cmp_ = compare_records(rec, bad, structural_only=False)
        assert not cmp_["ok"]
        assert cmp_["summary"]["over_budget"] == [
            "engines.set_associative_8way.speedup"
        ]

    def test_improvement_never_gates(self):
        rec = record_from_bench(BENCH)
        fast = perturbed("trace.expand_seconds", 0.25)
        cmp_ = compare_records(rec, fast, structural_only=False)
        assert cmp_["ok"]
        assert cmp_["keys"]["trace.expand_seconds"]["class"] == "improved"

    def test_structural_mismatch_always_gates(self):
        rec = record_from_bench(BENCH)
        drifted = perturbed("trace.accesses", 1.001)
        for structural_only in (False, True):
            cmp_ = compare_records(rec, drifted,
                                   structural_only=structural_only)
            assert not cmp_["ok"]
            assert "trace.accesses" in cmp_["summary"]["over_budget"]
            assert cmp_["keys"]["trace.accesses"]["class"] == "regressed"

    def test_deterministic_timing_skips_timing_keys(self):
        rec = record_from_bench(BENCH)
        slow = perturbed("trace.expand_seconds", 100.0)
        cmp_ = compare_records(rec, slow, structural_only=True)
        assert cmp_["ok"], "timing keys must not gate in deterministic mode"
        assert cmp_["keys"]["trace.expand_seconds"]["class"] == "skipped"
        # structural keys still compare exactly
        assert cmp_["keys"]["trace.accesses"]["class"] == "unchanged"

    def test_added_and_removed_keys_never_gate(self):
        base = build_record({"a.x": 1.0}, source="s")
        cand = build_record({"a.y": 2.0}, source="s")
        cmp_ = compare_records(base, cand, structural_only=False)
        assert cmp_["ok"]
        assert cmp_["keys"]["a.x"]["class"] == "removed"
        assert cmp_["keys"]["a.y"]["class"] == "added"

    def test_history_widens_tolerance(self):
        # A key whose trajectory is noisy gets a band wide enough to
        # absorb a move the bare floor would have called a regression.
        values = [1.0, 1.5, 0.6, 1.4, 0.7, 1.3]
        history = [build_record({"noisy.seconds": v}, source="s")
                   for v in values]
        base = build_record({"noisy.seconds": 1.0}, source="s")
        cand = build_record({"noisy.seconds": 1.2}, source="s")
        with_hist = compare_records(base, cand, history=history,
                                    structural_only=False)
        without = compare_records(base, cand, structural_only=False)
        assert with_hist["keys"]["noisy.seconds"]["class"] == "unchanged"
        assert without["keys"]["noisy.seconds"]["class"] == "regressed"

    def test_machine_mismatch_noted(self):
        a = build_record({"x": 1.0}, source="s",
                         manifest={"machine": {"sha256": "m1"}})
        b = build_record({"x": 1.0}, source="s",
                         manifest={"machine": {"sha256": "m2"}})
        cmp_ = compare_records(a, b, structural_only=False)
        assert any("machine" in note for note in cmp_["notes"])

    def test_render_comparison_smoke(self):
        rec = record_from_bench(BENCH)
        bad = perturbed("engines.set_associative_8way.speedup", 0.5)
        text = render_comparison(compare_records(rec, bad,
                                                 structural_only=False))
        assert "OVER BUDGET" in text
        assert "engines.set_associative_8way.speedup" in text

    def test_render_span_diff_smoke(self):
        base = {"a": {"count": 1, "total_s": 2.0, "self_s": 2.0}}
        cand = {"a": {"count": 1, "total_s": 1.0, "self_s": 1.0},
                "b": {"count": 1, "total_s": 0.5, "self_s": 0.5}}
        from repro.perf.compare import compare_spans

        text = render_span_diff(compare_spans(base, cand))
        assert "a" in text and "-1.0000" in text and "b" in text


class TestRoundTrip:
    """The acceptance loop: append -> compare -> history."""

    def test_append_compare_history(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PERF_HISTORY_DIR", str(tmp_path))
        baseline_path = tmp_path / "BENCH_baseline.json"
        baseline_path.write_text(json.dumps(BENCH))
        candidate_path = tmp_path / "BENCH_memsim.json"
        candidate_path.write_text(json.dumps(BENCH))

        store = HistoryStore(tmp_path)
        store.append(record_from_bench(BENCH), stream="perf_smoke")

        # identical runs: gate passes (exit 0 / no SystemExit)
        assert main(["perf", "check", "--against", str(baseline_path),
                     "--candidate", str(candidate_path), "--json"]) == 0
        capsys.readouterr()  # drain; the written artifact is the check below
        comparison = json.loads(
            (tmp_path / "last_comparison.json").read_text()
        )
        assert comparison["ok"]

        # history gained the record and serves the trajectory
        assert len(store.load("perf_smoke")) == 1
        series = store.series("trace_synthesis.speedup")
        assert [p["value"] for p in series] == [7.0]

        # injected 2x slowdown on a gated ratio: gate fails, JSON names key
        bad = dict(json.loads(candidate_path.read_text()))
        bad["engines"]["set_associative_8way"]["speedup"] = 5.0
        candidate_path.write_text(json.dumps(bad))
        with pytest.raises(SystemExit) as exc:
            main(["perf", "check", "--against", str(baseline_path),
                  "--candidate", str(candidate_path), "--json"])
        assert exc.value.code == 1
        stdout = capsys.readouterr().out
        payload = json.loads(stdout[stdout.index("{"):])
        assert payload["ok"] is False
        assert ("engines.set_associative_8way.speedup"
                in payload["summary"]["over_budget"])

    def test_perf_compare_latest(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PERF_HISTORY_DIR", str(tmp_path))
        store = HistoryStore(tmp_path)
        store.append(record_from_bench(BENCH), stream="perf_smoke")
        assert main(["perf", "compare", "latest", "latest"]) == 0
        assert "perf comparison" in capsys.readouterr().out

    def test_perf_history_cli(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PERF_HISTORY_DIR", str(tmp_path))
        store = HistoryStore(tmp_path)
        for v in (6.0, 7.0, 8.0):
            rec = build_record({"trace_synthesis.speedup": v}, source="perf_smoke")
            rec["created_unix"] = v
            store.append(rec, stream="perf_smoke")
        assert main(["perf", "history", "trace_synthesis.speedup"]) == 0
        out = capsys.readouterr().out
        assert "3 samples" in out and "8" in out

    def test_perf_history_unknown_key_exits(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_HISTORY_DIR", str(tmp_path))
        with pytest.raises(SystemExit):
            main(["perf", "history", "no.such.key"])

    def test_check_window_takes_best_sample(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_HISTORY_DIR", str(tmp_path))
        baseline_path = tmp_path / "BENCH_baseline.json"
        baseline_path.write_text(json.dumps(BENCH))
        store = HistoryStore(tmp_path)
        # history holds a fast sample; the current file is a slow outlier
        store.append(record_from_bench(BENCH), stream="perf_smoke")
        slow = dict(json.loads(baseline_path.read_text()))
        slow["trace"]["expand_seconds"] = 6.0  # > 2.0 budget over 1.25
        candidate_path = tmp_path / "BENCH_memsim.json"
        candidate_path.write_text(json.dumps(slow))
        with pytest.raises(SystemExit):
            main(["perf", "check", "--against", str(baseline_path),
                  "--candidate", str(candidate_path)])
        # with --window 2 the min-of-k reduction recovers the fast sample
        assert main(["perf", "check", "--against", str(baseline_path),
                     "--candidate", str(candidate_path), "--window", "2"]) == 0
