"""Wide/lean matrix partitioning (Figure 3)."""

import numpy as np

from repro.matrix.partition import BlockProduct, plan_partition
from repro.matrix.tile import TileRange


class TestPlanPartition:
    def test_squat_is_trivial(self):
        p = plan_partition(100, 100, 100, TileRange(16, 32))
        assert p.is_trivial
        assert p.n_products == 1

    def test_paper_wide_example(self):
        # The 1024 x 256 case from Section 4 must split along m.
        p = plan_partition(1024, 256, 256, TileRange(17, 32))
        assert p.p_m > 1
        assert p.p_k == 1 and p.p_n == 1

    def test_lean_b(self):
        p = plan_partition(64, 64, 1024, TileRange(17, 32))
        assert p.p_n > 1

    def test_inner_split_accumulates(self):
        p = plan_partition(64, 1024, 64, TileRange(17, 32))
        assert p.p_k > 1
        prods = p.block_products()
        # Exactly one non-accumulating product per output block.
        by_out = {}
        for bp in prods:
            key = (bp.row_range, bp.col_range)
            by_out.setdefault(key, []).append(bp)
        for group in by_out.values():
            assert sum(1 for bp in group if not bp.accumulate) == 1
            assert not group[0].accumulate

    def test_blocks_cover_exactly(self):
        p = plan_partition(300, 40, 35, TileRange(8, 16))
        prods = p.block_products()
        cover = np.zeros((300, 35), dtype=int)
        k_cover = np.zeros(40, dtype=int)
        for bp in prods:
            cover[bp.row_range[0] : bp.row_range[1], bp.col_range[0] : bp.col_range[1]] += 1
        expected = p.p_k
        assert (cover == expected).all()

    def test_blocks_are_squat_feasible(self):
        tr = TileRange(8, 16)
        p = plan_partition(500, 30, 30, tr)
        from repro.matrix.tile import select_matmul_tiling

        for bp in p.block_products():
            m, k, n = bp.shape
            select_matmul_tiling(m, k, n, tr)  # must not raise

    def test_powers_of_two_block_counts(self):
        p = plan_partition(1024, 64, 64, TileRange(16, 32))
        for v in (p.p_m, p.p_k, p.p_n):
            assert v & (v - 1) == 0

    def test_extreme_aspect(self):
        p = plan_partition(2048, 16, 16, TileRange(8, 16))
        assert p.p_m >= 64


class TestBlockProduct:
    def test_shape(self):
        bp = BlockProduct((0, 10), (5, 25), (2, 9), accumulate=False)
        assert bp.shape == (10, 20, 7)
