"""dgemm paths not covered by the core tests: custom kernels, runtimes,
temps mode, canonical C-order tracing, partition cost preferences."""

import numpy as np

from repro.algorithms.dgemm import dgemm
from repro.matrix.tile import TileRange

TR = TileRange(8, 16)


class TestKernelPlumbing:
    def test_custom_kernel_callable(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        calls = []

        def spy_kernel(c, x, y, accumulate=True):
            calls.append(c.shape)
            if accumulate:
                c += x @ y
            else:
                np.matmul(x, y, out=c)

        r = dgemm(a, b, kernel=spy_kernel, trange=TR)
        np.testing.assert_allclose(r.c, a @ b, atol=1e-10)
        assert calls and all(s == calls[0] for s in calls)

    def test_sixloop_kernel_through_dgemm(self, rng):
        a = rng.standard_normal((24, 24))
        b = rng.standard_normal((24, 24))
        r = dgemm(a, b, kernel="sixloop", trange=TR)
        np.testing.assert_allclose(r.c, a @ b, atol=1e-10)

    def test_temps_mode_through_dgemm(self, rng):
        a = rng.standard_normal((40, 40))
        b = rng.standard_normal((40, 40))
        r = dgemm(a, b, mode="temps", trange=TR)
        np.testing.assert_allclose(r.c, a @ b, atol=1e-10)

    def test_temps_mode_with_beta(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        c = rng.standard_normal((32, 32))
        r = dgemm(a, b, c, beta=1.5, mode="temps", trange=TR)
        np.testing.assert_allclose(r.c, a @ b + 1.5 * c, atol=1e-10)


class TestRuntimePlumbing:
    def test_trace_runtime_collects_whole_call(self, rng):
        from repro.runtime import TraceRuntime, work

        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        rt = TraceRuntime()
        dgemm(a, b, algorithm="winograd", rt=rt, trange=TR)
        assert work(rt.root) > 0
        assert rt.root.n_leaves > 7

    def test_thread_runtime_with_partition(self, rng):
        from repro.runtime import ThreadRuntime

        a = rng.standard_normal((200, 16))
        b = rng.standard_normal((16, 16))
        with ThreadRuntime(n_workers=2) as rt:
            r = dgemm(a, b, rt=rt, trange=TR)
        np.testing.assert_allclose(r.c, a @ b, atol=1e-10)


class TestPartitionQuality:
    def test_extreme_lean_prefers_split_over_pad(self, rng):
        # A 4 x 512 op(A): a square tile grid could "fit" it only with
        # ~64x padding; the cost-based planner must split n instead.
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 512))
        r = dgemm(a, b, trange=TileRange(8, 16))
        np.testing.assert_allclose(r.c, a @ b, atol=1e-10)
        assert r.partition.p_n > 1

    def test_tiny_matrices(self, rng):
        a = rng.standard_normal((3, 2))
        b = rng.standard_normal((2, 5))
        r = dgemm(a, b)
        np.testing.assert_allclose(r.c, a @ b, atol=1e-12)

    def test_one_by_one(self):
        r = dgemm(np.array([[3.0]]), np.array([[4.0]]))
        assert r.c[0, 0] == 12.0

    def test_vector_like(self, rng):
        a = rng.standard_normal((1, 64))
        b = rng.standard_normal((64, 1))
        r = dgemm(a, b, trange=TileRange(8, 16))
        np.testing.assert_allclose(r.c, a @ b, atol=1e-10)


class TestCanonicalCOrderTrace:
    def test_row_major_dense_region(self, rng):
        # The trace generator must handle C-order canonical storage too.
        from repro.matrix.tiledmatrix import DenseMatrix
        from repro.memsim.trace import view_region

        dm = DenseMatrix.zeros(1, 4, 4, order="C")
        q = dm.root_view().quadrant(0, 1)
        r = view_region(q)
        # C-order: rows are contiguous; the region transposes roles.
        assert r.rows == 4 and r.cols == 4
        assert r.col_stride == 8
