"""Leaf kernels and instrumentation counters."""

import numpy as np
import pytest

from repro.kernels import instrument
from repro.kernels.leaf import (
    KERNELS,
    get_kernel,
    leaf_blas,
    leaf_sixloop,
    leaf_unrolled,
)


@pytest.fixture
def abc(rng):
    a = np.asfortranarray(rng.standard_normal((6, 9)))
    b = np.asfortranarray(rng.standard_normal((9, 7)))
    c = np.asfortranarray(rng.standard_normal((6, 7)))
    return a, b, c


class TestKernelsAgree:
    @pytest.mark.parametrize("name", ["blas", "sixloop", "unrolled"])
    def test_accumulates(self, name, abc):
        a, b, c = abc
        ref = c + a @ b
        KERNELS[name](c, a, b)
        np.testing.assert_allclose(c, ref, atol=1e-12)

    def test_all_three_identical(self, abc):
        a, b, c = abc
        c1, c2, c3 = c.copy(), c.copy(), c.copy()
        leaf_blas(c1, a, b)
        leaf_sixloop(c2, a, b)
        leaf_unrolled(c3, a, b)
        np.testing.assert_allclose(c1, c2, atol=1e-12)
        np.testing.assert_allclose(c1, c3, atol=1e-12)

    def test_unrolled_remainder_loop(self, rng):
        # k not divisible by 4 exercises the cleanup loop.
        a = rng.standard_normal((3, 5))
        b = rng.standard_normal((5, 3))
        c = np.zeros((3, 3))
        leaf_unrolled(c, a, b)
        np.testing.assert_allclose(c, a @ b, atol=1e-12)

    def test_strided_views(self, rng):
        # Canonical-layout leaves are strided; kernels must handle them.
        big = np.asfortranarray(rng.standard_normal((16, 16)))
        a = big[2:8, 3:9]
        b = big[1:7, 4:10]
        c = np.zeros((6, 6), order="F")
        ref = a @ b
        leaf_blas(c, a, b)
        np.testing.assert_allclose(c, ref)


class TestRegistry:
    def test_get_by_name(self):
        assert get_kernel("blas") is leaf_blas

    def test_passthrough_callable(self):
        fn = lambda c, a, b: None  # noqa: E731
        assert get_kernel(fn) is fn

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_kernel("fortran")


class TestInstrumentation:
    def test_flops_counted(self, abc):
        a, b, c = abc
        with instrument.collect() as got:
            leaf_blas(c, a, b)
        assert got.multiply_flops == 2 * 6 * 9 * 7
        assert got.leaf_multiplies == 1

    def test_nested_collect(self, abc):
        a, b, c = abc
        with instrument.collect() as outer:
            leaf_blas(c, a, b)
            with instrument.collect() as inner:
                leaf_blas(c, a, b)
        assert inner.leaf_multiplies == 1
        assert outer.leaf_multiplies == 2

    def test_total_flops(self):
        cnt = instrument.Counters(multiply_flops=100, add_elements=20)
        assert cnt.total_flops == 120

    def test_reset(self, abc):
        a, b, c = abc
        leaf_blas(c, a, b)
        instrument.reset()
        assert instrument.counters.multiply_flops == 0
