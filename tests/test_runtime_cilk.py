"""Cilk-style runtimes: serial, tracing, threaded."""

import numpy as np
import pytest

from repro.runtime.cilk import CostModel, SerialRuntime, ThreadRuntime, TraceRuntime
from repro.runtime.task import span, work


class TestCostModel:
    def test_multiply(self):
        cm = CostModel(flop=2.0)
        assert cm.multiply(4, 5, 6) == 2 * 4 * 5 * 6 * 2.0

    def test_streamed(self):
        cm = CostModel(stream=3.0)
        assert cm.streamed(100) == 300.0


class TestSerialRuntime:
    def test_executes_in_order(self):
        rt = SerialRuntime()
        order = []
        rt.spawn_all([lambda: order.append(1), lambda: order.append(2)])
        assert order == [1, 2]

    def test_returns_results(self):
        rt = SerialRuntime()
        assert rt.spawn_all([lambda: "a", lambda: "b"]) == ["a", "b"]

    def test_cost_hooks_are_noops(self):
        rt = SerialRuntime()
        rt.task_multiply(2, 2, 2)
        rt.task_stream(100)


class TestTraceRuntime:
    def test_records_parallel_structure(self):
        cm = CostModel(flop=1.0, stream=1.0, spawn=0.0)
        rt = TraceRuntime(cm)

        def task():
            rt.task_multiply(2, 2, 2)  # cost 16

        rt.spawn_all([task, task, task])
        assert work(rt.root) == 48
        assert span(rt.root) == 16

    def test_nested_spawns(self):
        cm = CostModel(spawn=0.0)
        rt = TraceRuntime(cm)

        def inner():
            rt.task_stream(10)  # cost 40 with default stream=4

        def outer():
            rt.spawn_all([inner, inner])
            rt.task_stream(10)

        rt.spawn_all([outer, outer])
        # each outer: parallel(40, 40) then 40 -> span 80; two in parallel.
        assert span(rt.root) == 80.0
        assert work(rt.root) == 240.0

    def test_spawn_cost_charged(self):
        rt = TraceRuntime(CostModel(spawn=7.0))
        rt.spawn_all([lambda: None, lambda: None])
        assert work(rt.root) == 14.0

    def test_results_order_preserved(self):
        rt = TraceRuntime()
        assert rt.spawn_all([lambda: 1, lambda: 2, lambda: 3]) == [1, 2, 3]

    def test_exception_restores_context(self):
        rt = TraceRuntime()
        with pytest.raises(RuntimeError):
            rt.spawn_all([lambda: (_ for _ in ()).throw(RuntimeError("boom"))])
        # Context must be back at root: new tasks attach at top level.
        rt.task_stream(1)
        assert rt.root.children[-1].kind == "leaf"


class TestThreadRuntime:
    def test_matches_serial_result(self, rng):
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        pieces = [(a[:32], b), (a[32:], b)]
        with ThreadRuntime(n_workers=2) as rt:
            got = rt.spawn_all([lambda p=p: p[0] @ p[1] for p in pieces])
        np.testing.assert_allclose(np.vstack(got), a @ b)

    def test_nested_runs_serially(self):
        events = []
        with ThreadRuntime(n_workers=2, max_depth=1) as rt:
            def outer(tag):
                rt.spawn_all([lambda: events.append(tag)])
                return tag

            assert rt.spawn_all([lambda: outer("x"), lambda: outer("y")]) == [
                "x",
                "y",
            ] or sorted(events) == ["x", "y"]
        assert sorted(events) == ["x", "y"]

    def test_full_multiply_through_thread_runtime(self, rng):
        from repro.algorithms.dgemm import dgemm
        from repro.matrix.tile import TileRange

        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        with ThreadRuntime(n_workers=2) as rt:
            r = dgemm(a, b, rt=rt, trange=TileRange(8, 16))
        np.testing.assert_allclose(r.c, a @ b, atol=1e-10)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ThreadRuntime(n_workers=0)

    def test_single_thunk_runs_inline(self):
        with ThreadRuntime(n_workers=2) as rt:
            assert rt.spawn_all([lambda: 42]) == [42]
