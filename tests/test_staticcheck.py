"""Static determinacy verifier (repro.staticcheck).

Three layers:

* the tentpole guarantee — every registered algorithm x layout pair
  PROVED race-free at symbolic n;
* the seeded-race bridge — the injected W/W and W/R programs from the
  dynamic sanitizer tests must be flagged *statically* with the same
  conflicting region pairs the dynamic detector reports;
* equivalence properties — the symbolically derived trace of a concrete
  multiply matches the executed tracer event-for-event and
  task-rank-for-task-rank after buffer-space canonicalization.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.recursion import stream_add
from repro.matrix.tiledmatrix import TiledMatrix
from repro.memsim.trace import TraceContext, run_traced_multiply
from repro.runtime.cilk import CostModel, TraceRuntime
from repro.sanitize import SPOracle, find_conflicts
from repro.staticcheck import (
    StaticTraceContext,
    all_pairs,
    check_events,
    reports_to_json,
    static_trace,
    staticcheck_multiply,
    sym_root,
)

# Shared across the equivalence properties: the pairs whose traced and
# symbolic recursions must coincide.
FAST_PAIRS = [
    ("standard", "LZ"), ("strassen", "LH"), ("winograd", "LG"),
    ("hybrid", "LU"), ("strassen_space", "LX"), ("standard", "LC"),
]


def space_order(events):
    """Buffer-space id -> rank by first appearance in program order."""
    order = {}
    for ev in events:
        for r in (ev.write, *ev.reads):
            if r.space not in order:
                order[r.space] = len(order)
    return order


def canon_event(ev, order):
    def canon(r):
        return (order[r.space], r.start, r.rows, r.cols, r.col_stride)

    return (ev.kind, canon(ev.write), tuple(canon(r) for r in ev.reads))


def conflict_keys(conflicts, order):
    """Order-independent fingerprints of the conflicting region pairs."""
    out = set()
    for c in conflicts:
        ka = (order[c.region_a.space], c.region_a.start, c.region_a.rows,
              c.region_a.cols, c.region_a.col_stride)
        kb = (order[c.region_b.space], c.region_b.start, c.region_b.rows,
              c.region_b.cols, c.region_b.col_stride)
        out.add((c.kind, c.access, tuple(sorted((ka, kb)))))
    return out


class TestRegistryProofs:
    @pytest.mark.parametrize("algorithm,layout", all_pairs())
    def test_pair_proved_race_free(self, algorithm, layout):
        report = staticcheck_multiply(algorithm, layout)
        assert report.ok, report.proof()
        assert report.race_free and report.certified
        assert report.n_signatures > 0
        assert "PROVED" in report.summary()
        assert "race-free for all n" in report.proof()

    def test_all_pairs_cover_registry(self):
        pairs = all_pairs()
        assert len(pairs) == 30
        assert ("hybrid", "LH") in pairs and ("standard", "LC") in pairs

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            staticcheck_multiply("schoenhage", "LZ")

    def test_depth_floor_enforced(self):
        with pytest.raises(ValueError, match="depth must be >= 2"):
            staticcheck_multiply("standard", "LZ", depth=1)

    def test_json_report_shape(self):
        reports = [staticcheck_multiply("strassen", "LZ")]
        data = json.loads(reports_to_json(reports))
        assert data["ok"] is True
        (rep,) = data["reports"]
        assert rep["algorithm"] == "strassen" and rep["layout"] == "LZ"
        assert rep["n_race_pairs"] == 0 and rep["certified"] is True
        assert rep["shape_class"].startswith("n = t*2^d")


def seeded_dynamic():
    """TraceRuntime-backed executed context + d=1 LZ quadrants (the
    dynamic sanitizer tests' seeded fixture)."""
    rt = TraceRuntime(CostModel(spawn=0.0))
    ctx = TraceContext(rt)
    mat = TiledMatrix.zeros("LZ", 1, 4, 4)
    return rt, ctx, mat.root_view().quadrants()


def seeded_static():
    """The same program over symbolic views — no buffers."""
    ctx = StaticTraceContext()
    root = sym_root("LZ", ctx.alloc, 1, 4)
    return ctx.rt, ctx, root.quadrants()


class TestSeededRaceBridge:
    """Injected races must be caught statically AND agree with the
    dynamic detector on the conflicting region pairs."""

    @staticmethod
    def run_ww(rt, ctx, quads):
        q11, q12, q21, q22 = quads
        rt.spawn_all([
            lambda: stream_add(ctx, q12, q21, q11),
            lambda: stream_add(ctx, q12, q22, q11),  # same dest q11: W/W
        ])

    @staticmethod
    def run_wr(rt, ctx, quads):
        q11, q12, q21, q22 = quads
        rt.spawn_all([
            lambda: stream_add(ctx, q12, q22, q11),  # writes q11
            lambda: stream_add(ctx, q11, q12, q21),  # reads q11: W/R
        ])

    @pytest.mark.parametrize("program,access", [(run_ww, "W/W"), (run_wr, "W/R")])
    def test_static_flags_seeded_race(self, program, access):
        rt, ctx, quads = seeded_static()
        program.__func__(rt, ctx, quads)
        scan = check_events(ctx.events, rt)
        assert scan.n_race_pairs > 0
        assert any(c.access == access for c in scan.races)

    @pytest.mark.parametrize("program", [run_ww, run_wr])
    def test_static_and_dynamic_agree_on_region_pairs(self, program):
        srt, sctx, squads = seeded_static()
        program.__func__(srt, sctx, squads)
        static_scan = check_events(sctx.events, srt)

        drt, dctx, dquads = seeded_dynamic()
        program.__func__(drt, dctx, dquads)
        dynamic_scan = find_conflicts(
            dctx.events, SPOracle(drt.root), machine=None
        )

        static_keys = conflict_keys(static_scan.races, space_order(sctx.events))
        dynamic_keys = conflict_keys(dynamic_scan.races, space_order(dctx.events))
        assert static_keys == dynamic_keys and static_keys
        assert static_scan.n_race_pairs == dynamic_scan.n_race_pairs

    def test_serial_reuse_not_flagged(self):
        rt, ctx, (q11, q12, q21, q22) = seeded_static()
        stream_add(ctx, q12, q21, q11)
        stream_add(ctx, q12, q22, q11)  # same dest, but ordered
        scan = check_events(ctx.events, rt)
        assert scan.n_race_pairs == 0

    def test_disjoint_outputs_not_flagged(self):
        rt, ctx, (q11, q12, q21, q22) = seeded_static()
        rt.spawn_all([
            lambda: stream_add(ctx, q11, q22, q12),  # writes q12
            lambda: stream_add(ctx, q11, q22, q21),  # writes q21
        ])
        scan = check_events(ctx.events, rt)
        assert scan.n_race_pairs == 0


class TestStaticTraceEquivalence:
    """static_trace == executed trace, event-for-event."""

    @pytest.mark.parametrize("algorithm,layout", FAST_PAIRS)
    def test_events_and_tasks_match(self, algorithm, layout):
        n, tile = 8, 2
        events, oracle = static_trace(algorithm, layout, n, tile=tile)

        rt = TraceRuntime(CostModel(spawn=0.0))
        dctx, _, _ = run_traced_multiply(
            algorithm, layout, n, tile, ctx=TraceContext(rt)
        )
        doracle = SPOracle(rt.root)

        sorder, dorder = space_order(events), space_order(dctx.events)
        assert [canon_event(e, sorder) for e in events] == [
            canon_event(e, dorder) for e in dctx.events
        ]
        # Task identity: same English rank event-for-event, so the SP
        # relation any race query sees is identical.
        assert [oracle.row_of(e.task) for e in events] == [
            doracle.row_of(e.task) for e in dctx.events
        ]
        assert oracle.n_leaves == doracle.n_leaves

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=24),
        pair=st.sampled_from(FAST_PAIRS),
    )
    def test_property_random_sizes(self, n, pair):
        algorithm, layout = pair
        events, oracle = static_trace(algorithm, layout, n, tile=4)
        rt = TraceRuntime(CostModel(spawn=0.0))
        dctx, _, _ = run_traced_multiply(
            algorithm, layout, n, 4, ctx=TraceContext(rt)
        )
        doracle = SPOracle(rt.root)
        sorder, dorder = space_order(events), space_order(dctx.events)
        assert [canon_event(e, sorder) for e in events] == [
            canon_event(e, dorder) for e in dctx.events
        ]
        assert [oracle.row_of(e.task) for e in events] == [
            doracle.row_of(e.task) for e in dctx.events
        ]
