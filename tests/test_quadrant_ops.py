"""Streamed quadrant operations with orientation correction (Section 4)."""

import numpy as np
import pytest

from repro.layouts.base import orientation_permutation
from repro.matrix.convert import to_tiled
from repro.matrix.quadrant import (
    add_views,
    copy_view,
    iadd_views,
    scale_view,
    sub_views,
    views_compatible,
    zero_view,
)
from repro.matrix.tile import Tiling
from repro.matrix.tiledmatrix import DenseMatrix, TiledMatrix
from tests.conftest import ALL_RECURSIVE, MULTI_ORIENTATION


def _tiled_quads(curve, rng, n=32, d=2, t=8):
    a = rng.standard_normal((n, n))
    tm = to_tiled(a, curve, Tiling(d, t, t, n, n))
    return a, tm.root_view().quadrants()


@pytest.mark.parametrize("curve", ALL_RECURSIVE)
class TestAddViews:
    def test_add_same_matrix_quadrants(self, curve, rng):
        a, (q11, q12, q21, q22) = _tiled_quads(curve, rng)
        out = q11.alloc_like()
        add_views(q11, q22, out)
        np.testing.assert_allclose(out.to_array(), a[:16, :16] + a[16:, 16:])

    def test_subtract(self, curve, rng):
        a, (q11, q12, q21, q22) = _tiled_quads(curve, rng)
        out = q11.alloc_like()
        sub_views(q12, q21, out)
        np.testing.assert_allclose(out.to_array(), a[:16, 16:] - a[16:, :16])

    def test_iadd(self, curve, rng):
        a, (q11, q12, q21, q22) = _tiled_quads(curve, rng)
        out = q11.alloc_like()
        copy_view(q11, out)
        iadd_views(out, q22)
        np.testing.assert_allclose(out.to_array(), a[:16, :16] + a[16:, 16:])

    def test_isub(self, curve, rng):
        a, (q11, q12, q21, q22) = _tiled_quads(curve, rng)
        out = q11.alloc_like()
        copy_view(q12, out)
        iadd_views(out, q21, subtract=True)
        np.testing.assert_allclose(out.to_array(), a[:16, 16:] - a[16:, :16])

    def test_copy(self, curve, rng):
        a, (q11, q12, q21, q22) = _tiled_quads(curve, rng)
        out = q22.alloc_like()
        copy_view(q22, out)
        np.testing.assert_allclose(out.to_array(), a[16:, 16:])

    def test_deep_mixed_orientations(self, curve, rng):
        a, (q11, q12, q21, q22) = _tiled_quads(curve, rng, n=64, d=3, t=8)
        x = q22.quadrant(1, 0)
        y = q11.quadrant(0, 1)
        out = x.alloc_like()
        add_views(x, y, out)
        np.testing.assert_allclose(
            out.to_array(), a[48:, 32:48] + a[:16, 16:32]
        )

    def test_scale_and_zero(self, curve, rng):
        a, (q11, *_rest) = _tiled_quads(curve, rng)
        scale_view(q11, 2.0)
        np.testing.assert_allclose(q11.to_array(), 2.0 * a[:16, :16])
        zero_view(q11)
        assert (q11.to_array() == 0).all()


@pytest.mark.parametrize("curve", MULTI_ORIENTATION)
class TestOrientationWrite:
    """Writing INTO a non-root-oriented quadrant must land correctly."""

    def test_write_into_oriented_quadrant(self, curve, rng):
        n = 32
        a = rng.standard_normal((n, n))
        tm_src = to_tiled(a, curve, Tiling(2, 8, 8, n, n))
        tm_dst = TiledMatrix.zeros(curve, 2, 8, 8, n, n)
        sq = tm_src.root_view().quadrants()
        dq = tm_dst.root_view().quadrants()
        # dst q22 (some non-root orientation) = src q11 + src q22.
        add_views(sq[0], sq[3], dq[3])
        got = tm_dst.root_view().to_array()
        np.testing.assert_allclose(got[16:, 16:], a[:16, :16] + a[16:, 16:])
        assert (got[:16, :] == 0).all()

    def test_iadd_into_oriented_quadrant(self, curve, rng):
        n = 32
        a = rng.standard_normal((n, n))
        tm = to_tiled(a, curve, Tiling(2, 8, 8, n, n))
        q11, q12, q21, q22 = tm.root_view().quadrants()
        iadd_views(q22, q11)
        got = tm.root_view().to_array()
        np.testing.assert_allclose(got[16:, 16:], a[16:, 16:] + a[:16, :16])


class TestGrayHalfStepEquivalence:
    """The two-half-step Gray path must equal the generic mapping-array
    path — the paper's symmetry argument, verified computationally."""

    def test_add_matches_permutation_gather(self, rng):
        from repro.layouts.registry import get_recursive_layout

        n = 32
        a = rng.standard_normal((n, n))
        tm = to_tiled(a, "LG", Tiling(2, 8, 8, n, n))
        q11, q12, q21, q22 = tm.root_view().quadrants()
        assert q11.orientation != q22.orientation  # the interesting case
        out = q11.alloc_like()
        add_views(q11, q22, out)  # exercises the half-step fast path
        # Generic gather reference:
        lay = get_recursive_layout("LG")
        perm_x = orientation_permutation(lay, q11.d, q11.orientation, 0)
        perm_y = orientation_permutation(lay, q22.d, q22.orientation, 0)
        ref = q11.tiles()[perm_x] + q22.tiles()[perm_y]
        np.testing.assert_allclose(out.tiles(), ref)


class TestDenseOps:
    def test_add(self, rng):
        dm = DenseMatrix.zeros(2, 4, 4)
        dm.array[...] = rng.standard_normal((16, 16))
        v = dm.root_view()
        out = v.quadrant(0, 0).alloc_like()
        add_views(v.quadrant(0, 0), v.quadrant(1, 1), out)
        np.testing.assert_allclose(out.array, dm.array[:8, :8] + dm.array[8:, 8:])

    def test_scale_zero(self, rng):
        dm = DenseMatrix.zeros(1, 4, 4)
        dm.array[...] = 1.0
        v = dm.root_view()
        scale_view(v, 3.0)
        assert (dm.array == 3.0).all()
        zero_view(v)
        assert (dm.array == 0.0).all()


class TestCompatibility:
    def test_incompatible_shapes_rejected(self, rng):
        t1 = TiledMatrix.zeros("LZ", 2, 4, 4)
        t2 = TiledMatrix.zeros("LZ", 1, 4, 4)
        assert not views_compatible(t1.root_view(), t2.root_view())
        with pytest.raises(ValueError):
            add_views(t1.root_view(), t2.root_view(), t1.root_view())

    def test_mixed_families_rejected(self):
        t1 = TiledMatrix.zeros("LZ", 1, 4, 4)
        d1 = DenseMatrix.zeros(1, 4, 4)
        assert not views_compatible(t1.root_view(), d1.root_view())

    def test_different_curves_rejected(self):
        t1 = TiledMatrix.zeros("LZ", 1, 4, 4)
        t2 = TiledMatrix.zeros("LH", 1, 4, 4)
        assert not views_compatible(t1.root_view(), t2.root_view())


class TestInstrumentation:
    def test_ops_counted(self, rng):
        from repro.kernels import instrument

        t1 = TiledMatrix.zeros("LZ", 1, 4, 4)
        t2 = TiledMatrix.zeros("LZ", 1, 4, 4)
        with instrument.collect() as c:
            add_views(t1.root_view(), t2.root_view(), t1.root_view())
        assert c.add_elements == 64
