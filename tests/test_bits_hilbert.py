"""Unit tests for the Hilbert-curve FSM (Bially construction)."""

import numpy as np
import pytest

from repro.bits.hilbert import (
    HILBERT_CHILD,
    HILBERT_INV,
    HILBERT_INV_CHILD,
    HILBERT_RANK,
    N_STATES,
    hilbert_s,
    hilbert_s_inv,
    hilbert_s_inv_scalar,
    hilbert_s_scalar,
)


def _wiki_xy2d(order: int, x: int, y: int) -> int:
    """Independent reference: Wikipedia's rotation-based algorithm."""
    rx = ry = 0
    d = 0
    s = (1 << order) // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


class TestFSMTables:
    def test_four_states(self):
        # The paper classifies Hilbert as the four-orientation layout.
        assert N_STATES == 4

    def test_rank_rows_are_permutations(self):
        for s in range(N_STATES):
            assert sorted(HILBERT_RANK[s].ravel().tolist()) == [0, 1, 2, 3]

    def test_children_valid(self):
        assert HILBERT_CHILD.min() >= 0
        assert HILBERT_CHILD.max() < N_STATES

    def test_inverse_tables_consistent(self):
        for s in range(N_STATES):
            for bx in (0, 1):
                for by in (0, 1):
                    d = HILBERT_RANK[s, bx, by]
                    assert tuple(HILBERT_INV[s, d]) == (bx, by)
                    assert HILBERT_INV_CHILD[s, d] == HILBERT_CHILD[s, bx, by]


class TestScalar:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_matches_rotation_reference(self, order):
        side = 1 << order
        for i in range(side):
            for j in range(side):
                assert hilbert_s_scalar(i, j, order) == _wiki_xy2d(order, j, i)

    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_bijection_and_inverse(self, order):
        side = 1 << order
        seen = set()
        for i in range(side):
            for j in range(side):
                s = hilbert_s_scalar(i, j, order)
                assert hilbert_s_inv_scalar(s, order) == (i, j)
                seen.add(s)
        assert seen == set(range(side * side))

    def test_starts_at_origin(self):
        for order in range(1, 8):
            assert hilbert_s_scalar(0, 0, order) == 0

    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_unit_steps(self, order):
        # The defining Hilbert property: successive positions are grid
        # neighbours (no dilation jumps at any scale).
        side = 1 << order
        prev = None
        for s in range(side * side):
            i, j = hilbert_s_inv_scalar(s, order)
            if prev is not None:
                assert abs(i - prev[0]) + abs(j - prev[1]) == 1
            prev = (i, j)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_s_scalar(4, 0, 2)
        with pytest.raises(ValueError):
            hilbert_s_inv_scalar(16, 2)
        with pytest.raises(ValueError):
            hilbert_s_scalar(0, 0, -1)

    def test_order_zero(self):
        assert hilbert_s_scalar(0, 0, 0) == 0
        assert hilbert_s_inv_scalar(0, 0) == (0, 0)


class TestVectorized:
    @pytest.mark.parametrize("order", [1, 3, 5, 8])
    def test_matches_scalar(self, order, rng):
        side = 1 << order
        i = rng.integers(0, side, size=300)
        j = rng.integers(0, side, size=300)
        s = hilbert_s(i, j, order)
        for ii, jj, ss in zip(i, j, s):
            assert hilbert_s_scalar(int(ii), int(jj), order) == int(ss)

    @pytest.mark.parametrize("order", [1, 4, 10])
    def test_roundtrip(self, order, rng):
        side = 1 << order
        i = rng.integers(0, side, size=500).astype(np.uint64)
        j = rng.integers(0, side, size=500).astype(np.uint64)
        s = hilbert_s(i, j, order)
        i2, j2 = hilbert_s_inv(s, order)
        np.testing.assert_array_equal(i2, i)
        np.testing.assert_array_equal(j2, j)

    def test_large_order(self):
        # 2^20 x 2^20 grid: exercises the uint64 paths.
        order = 20
        i = np.array([0, (1 << order) - 1], dtype=np.uint64)
        j = np.array([0, (1 << order) - 1], dtype=np.uint64)
        s = hilbert_s(i, j, order)
        i2, j2 = hilbert_s_inv(s, order)
        np.testing.assert_array_equal(i2, i)
        np.testing.assert_array_equal(j2, j)
