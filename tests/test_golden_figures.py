"""Golden-figure regression tests: the sweep drivers are deterministic.

Small-grid outputs of the fig4/fig5/fig6/fig6sim drivers are committed
as JSON under ``tests/golden/``.  Each test regenerates its grid with
``REPRO_DETERMINISTIC_TIMING=1`` (wall-clock fields collapse to 0.0 —
everything else is exact simulation) and asserts the serialized rows are
*byte-identical* to the golden file — first serially, then under
``REPRO_JOBS=2`` and ``REPRO_JOBS=4`` process pools, which proves the
parallel executor's determinism contract end to end: same rows, same
order, same bytes, regardless of worker count or completion order.

Regenerate after an intentional modeling change with::

    python -m pytest tests/test_golden_figures.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    fig4_tile_size_sweep,
    fig5_robustness,
    fig6_layout_comparison,
    fig6_machine_scaling,
    fig6_simulated,
)
from repro.matrix.tile import TileRange
from repro.memsim.machine import scaled

GOLDEN_DIR = Path(__file__).parent / "golden"

MACH = scaled(4)

#: name -> driver thunk; every thunk takes only ``jobs`` so the serial
#: and parallel tests run the exact same grid.
CASES = {
    "fig4": lambda jobs: fig4_tile_size_sweep(
        n=32, tiles=(4, 8), repeats=1, machine=MACH, include_memsim=True,
        jobs=jobs,
    ),
    "fig5": lambda jobs: fig5_robustness(
        n_values=(56, 60, 64), tile=8, machine=MACH, jobs=jobs,
    ),
    "fig6": lambda jobs: fig6_layout_comparison(
        n=32, algorithms=("strassen",), layouts=("LZ", "LH"), procs=(1, 2),
        trange=TileRange(8, 16), repeats=1, jobs=jobs,
    ),
    "fig6sim": lambda jobs: fig6_simulated(
        n=48, tile=8, algorithms=("standard", "strassen"),
        layouts=("LC", "LZ"), machine=MACH, jobs=jobs,
    ),
    "fig6ms": lambda jobs: fig6_machine_scaling(
        n=32, tile=8, algorithms=("standard", "strassen"),
        layouts=("LC", "LZ"), l1_assocs=(1, 2), l2_assocs=(1, 2),
        tlb_entries=(8,), jobs=jobs,
    ),
}


def _serialize(rows) -> bytes:
    return (json.dumps(rows, indent=2, sort_keys=True) + "\n").encode()


@pytest.fixture(autouse=True)
def _deterministic_timing(monkeypatch):
    # Workers inherit os.environ, so the flag reaches the pool too.
    monkeypatch.setenv("REPRO_DETERMINISTIC_TIMING", "1")


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_serial(name, request):
    """Serial driver output matches the committed golden bytes."""
    blob = _serialize(CASES[name](1))
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        pytest.skip(f"updated {path}")
    assert path.exists(), (
        f"missing golden file {path}; run with --update-golden to create it"
    )
    assert path.read_bytes() == blob, (
        f"{name} driver output drifted from {path}; if the change is "
        f"intentional, rerun with --update-golden"
    )


@pytest.mark.parametrize("jobs", [2, 4])
@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_parallel(name, jobs, request):
    """Process-pool output is byte-identical to the golden (serial) bytes."""
    if request.config.getoption("--update-golden"):
        pytest.skip("golden files update from the serial run only")
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), f"missing golden file {path}"
    assert path.read_bytes() == _serialize(CASES[name](jobs))


#: The memsim-backed figures: their traces come from the symbolic
#: synthesizer by default, from the executed tracer when it is off.
SIM_CASES = ("fig4", "fig5", "fig6sim", "fig6ms")


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("synthesis", ["1", "0"])
@pytest.mark.parametrize("name", SIM_CASES)
def test_golden_synthesis_toggle(name, synthesis, jobs, monkeypatch, request):
    """Goldens hold byte-identical with trace synthesis on (default) and
    off (executed-tracer oracle), serially and under a 2-worker pool.

    The trace cache is disabled so each leg really computes its traces
    through the selected path instead of reading the other leg's bytes.
    """
    if request.config.getoption("--update-golden"):
        pytest.skip("golden files update from the serial run only")
    from repro.memsim import store as store_mod

    monkeypatch.setenv("REPRO_TRACE_SYNTHESIS", synthesis)
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    monkeypatch.setattr(store_mod, "_DEFAULT", None)
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), f"missing golden file {path}"
    assert path.read_bytes() == _serialize(CASES[name](jobs))


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("multiconfig", ["1", "0"])
@pytest.mark.parametrize("name", SIM_CASES)
def test_golden_multiconfig_toggle(name, multiconfig, jobs, monkeypatch, request):
    """Goldens hold byte-identical with the shared reuse-distance
    profiles on (default) and off (per-config streaming oracle),
    serially and under a 2-worker pool.

    The trace cache is disabled so each leg simulates every point
    through the selected engine instead of replaying stored stats.
    """
    if request.config.getoption("--update-golden"):
        pytest.skip("golden files update from the serial run only")
    from repro.memsim import store as store_mod

    monkeypatch.setenv("REPRO_MULTICONFIG", multiconfig)
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    monkeypatch.setattr(store_mod, "_DEFAULT", None)
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), f"missing golden file {path}"
    assert path.read_bytes() == _serialize(CASES[name](jobs))


def test_seconds_fields_zeroed_under_deterministic_timing():
    """The flag really does zero every wall-clock-derived field."""
    rows = CASES["fig4"](1)
    assert all(r["seconds"] == 0.0 for r in rows)
    assert all(r["conversion_fraction"] == 0.0 for r in rows)
