"""Cross-module edge cases and defensive-path coverage."""

import numpy as np
import pytest

from repro.matrix import (
    DenseMatrix,
    TileRange,
    TiledMatrix,
    Tiling,
    from_tiled,
    to_tiled,
)


class TestDegenerateGeometries:
    def test_one_by_one_tiles(self, rng):
        a = rng.standard_normal((4, 4))
        tm = to_tiled(a, "LH", Tiling(2, 1, 1, 4, 4))
        np.testing.assert_array_equal(from_tiled(tm), a)

    def test_single_row_matrix(self, rng):
        a = rng.standard_normal((1, 16))
        tm = to_tiled(a, "LZ", Tiling(2, 1, 4, 1, 16))
        np.testing.assert_array_equal(from_tiled(tm), a)

    def test_single_column_matrix(self, rng):
        a = rng.standard_normal((16, 1))
        tm = to_tiled(a, "LG", Tiling(2, 4, 1, 16, 1))
        np.testing.assert_array_equal(from_tiled(tm), a)

    def test_depth_zero_grid(self, rng):
        a = rng.standard_normal((5, 7))
        tm = to_tiled(a, "LU", Tiling(0, 5, 7, 5, 7))
        assert tm.root_view().is_leaf
        np.testing.assert_array_equal(from_tiled(tm), a)

    def test_element_level_everything(self, rng):
        # Frens & Wise's configuration: 1x1 tiles all the way down.
        from repro.algorithms.standard import standard_multiply

        n = 8
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        t = Tiling(3, 1, 1, n, n)
        A, B = to_tiled(a, "LU", t), to_tiled(b, "LU", t)
        C = TiledMatrix.zeros("LU", 3, 1, 1, n, n)
        standard_multiply(C.root_view(), A.root_view(), B.root_view())
        np.testing.assert_allclose(from_tiled(C), a @ b, atol=1e-12)


class TestAlgorithmsOnSpecialValues:
    @pytest.mark.parametrize("algo", ["standard", "strassen", "winograd",
                                      "strassen_space", "hybrid"])
    def test_zero_matrices(self, algo):
        from repro.algorithms.dgemm import dgemm

        z = np.zeros((16, 16))
        r = dgemm(z, z, algorithm=algo, trange=TileRange(4, 8))
        assert (r.c == 0).all()

    @pytest.mark.parametrize("algo", ["strassen", "winograd"])
    def test_identity_product(self, algo, rng):
        from repro.algorithms.dgemm import dgemm

        a = rng.standard_normal((32, 32))
        r = dgemm(a, np.eye(32), algorithm=algo, trange=TileRange(8, 16))
        np.testing.assert_allclose(r.c, a, atol=1e-12)

    def test_large_magnitudes_no_overflow(self):
        from repro.algorithms.dgemm import dgemm

        a = np.full((16, 16), 1e150)
        b = np.full((16, 16), 1e-150)
        r = dgemm(a, b, trange=TileRange(4, 8))
        np.testing.assert_allclose(r.c, np.full((16, 16), 16.0))


class TestViewAliasing:
    def test_same_matrix_as_a_and_b(self, rng):
        # C = A . A must work (operands share storage, C separate).
        from repro.algorithms.strassen import strassen_multiply

        n = 32
        a = rng.standard_normal((n, n))
        t = Tiling(2, 8, 8, n, n)
        A = to_tiled(a, "LZ", t)
        C = TiledMatrix.zeros("LZ", 2, 8, 8, n, n)
        strassen_multiply(C.root_view(), A.root_view(), A.root_view())
        np.testing.assert_allclose(from_tiled(C), a @ a, atol=1e-9)

    def test_quadrants_of_one_matrix_as_all_operands(self, rng):
        # C-quadrant += A-quadrant . B-quadrant of one backing matrix,
        # with disjoint quadrants: no aliasing hazards.
        from repro.algorithms.standard import standard_multiply

        n = 32
        a = rng.standard_normal((n, n))
        tm = to_tiled(a, "LH", Tiling(2, 8, 8, n, n))
        q11, q12, q21, q22 = tm.root_view().quadrants()
        before = tm.root_view().to_array()
        standard_multiply(q12, q11, q22, accumulate=False)
        after = tm.root_view().to_array()
        np.testing.assert_allclose(
            after[:16, 16:], before[:16, :16] @ before[16:, 16:], atol=1e-10
        )
        # Other quadrants untouched.
        np.testing.assert_array_equal(after[16:, :], before[16:, :])


class TestDenseMatrixEdges:
    def test_c_order_roundtrip_through_algorithms(self, rng):
        from repro.algorithms.standard import standard_multiply
        from repro.matrix import to_dense_padded

        n = 16
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        t = Tiling(1, 8, 8, n, n)
        DA = to_dense_padded(a, t, order="C")
        DB = to_dense_padded(b, t, order="C")
        DC = DenseMatrix.zeros(1, 8, 8, n, n, order="C")
        standard_multiply(DC.root_view(), DA.root_view(), DB.root_view())
        np.testing.assert_allclose(DC.array[:n, :n], a @ b, atol=1e-10)


class TestFloat32Pipeline:
    def test_float32_strassen(self, rng):
        from repro.algorithms.dgemm import dgemm

        a = rng.standard_normal((32, 32)).astype(np.float32)
        b = rng.standard_normal((32, 32)).astype(np.float32)
        r = dgemm(a, b, algorithm="strassen", trange=TileRange(8, 16))
        assert r.c.dtype == np.float32
        np.testing.assert_allclose(r.c, a @ b, atol=1e-3)

    def test_float32_cholesky(self, rng):
        from repro.algorithms.cholesky import cholesky

        n = 24
        x = rng.standard_normal((n, n)).astype(np.float32)
        a = (x @ x.T + n * np.eye(n, dtype=np.float32)).astype(np.float32)
        L = cholesky(a.astype(np.float64), trange=TileRange(8, 16))
        np.testing.assert_allclose(L @ L.T, a, atol=1e-3)
