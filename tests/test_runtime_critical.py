"""Analytic work/span recurrences vs. the traced implementation."""

import pytest

from repro.runtime.cilk import CostModel, TraceRuntime
from repro.runtime.critical import ALGORITHM_RECURRENCES, WorkSpan, work_span
from repro.runtime.task import span as tree_span
from repro.runtime.task import work as tree_work


class TestWorkSpan:
    def test_parallelism(self):
        ws = WorkSpan(work=100.0, span=10.0)
        assert ws.parallelism == 10.0

    def test_speedup_bound(self):
        ws = WorkSpan(work=100.0, span=10.0)
        assert ws.speedup(4) == pytest.approx(100 / (25 + 10))
        assert ws.speedup(10**9) <= ws.parallelism + 1e-9

    def test_zero_span(self):
        assert WorkSpan(1.0, 0.0).parallelism == float("inf")


class TestRecurrences:
    def test_depth_zero_is_leaf(self):
        cm = CostModel(spawn=0.0)
        ws = work_span("standard", 16, 16, cm)
        assert ws.work == cm.multiply(16, 16, 16)

    def test_standard_work_is_2n3(self):
        cm = CostModel(flop=1.0, spawn=0.0)
        for n, t in [(64, 8), (256, 16)]:
            ws = work_span("standard", n, t, cm)
            assert ws.work == pytest.approx(2.0 * n**3)

    def test_standard_span_doubles_per_level(self):
        cm = CostModel(spawn=0.0)
        leaf = cm.multiply(16, 16, 16)
        ws = work_span("standard", 128, 16, cm)
        assert ws.span == pytest.approx(leaf * 2**3)

    def test_paper_parallelism_ordering(self):
        # Paper Section 5: standard has ~40-processor parallelism at
        # n=1000, fast algorithms ~23 — standard must rank highest and
        # the fast ones comparable to each other.
        out = {
            a: work_span(a, 1024, 32).parallelism
            for a in ("standard", "strassen", "winograd")
        }
        assert out["standard"] > out["strassen"] > 1
        assert out["standard"] > out["winograd"] > 1
        assert out["strassen"] / out["winograd"] < 4

    def test_all_have_ample_parallelism_for_4(self):
        for algo in ALGORITHM_RECURRENCES:
            ws = work_span(algo, 1024, 32)
            assert ws.speedup(4) > 3.5, algo

    def test_validation(self):
        with pytest.raises(KeyError):
            work_span("bogus", 64, 8)
        with pytest.raises(ValueError):
            work_span("standard", 100, 16)
        with pytest.raises(ValueError):
            work_span("standard", 48, 16)


class TestAgainstTrace:
    """The closed-form recurrences must match the traced SP tree."""

    @pytest.mark.parametrize("algo", ["standard", "strassen", "winograd"])
    def test_work_matches_trace(self, algo):
        from repro.algorithms.dgemm import ALGORITHMS
        from repro.algorithms.recursion import Context
        from repro.matrix.tiledmatrix import TiledMatrix

        n, t, d = 64, 8, 3
        cm = CostModel(flop=1.0, stream=4.0, spawn=0.0)
        rt = TraceRuntime(cm)
        c = TiledMatrix.zeros("LZ", d, t, t)
        a = TiledMatrix.zeros("LZ", d, t, t)
        b = TiledMatrix.zeros("LZ", d, t, t)
        ALGORITHMS[algo](c.root_view(), a.root_view(), b.root_view(), Context(rt),
                         accumulate=False)
        traced = tree_work(rt.root)
        analytic = work_span(algo, n, t, cm).work
        assert traced == pytest.approx(analytic, rel=0.05), algo

    def test_standard_span_matches_trace_exactly(self):
        from repro.algorithms.standard import standard_multiply
        from repro.algorithms.recursion import Context
        from repro.matrix.tiledmatrix import TiledMatrix

        cm = CostModel(flop=1.0, stream=4.0, spawn=0.0)
        rt = TraceRuntime(cm)
        c = TiledMatrix.zeros("LZ", 2, 8, 8)
        a = TiledMatrix.zeros("LZ", 2, 8, 8)
        b = TiledMatrix.zeros("LZ", 2, 8, 8)
        standard_multiply(c.root_view(), a.root_view(), b.root_view(), Context(rt))
        assert tree_span(rt.root) == pytest.approx(
            work_span("standard", 32, 8, cm).span
        )
