"""Synthetic canonical-baseline trace generators."""

import numpy as np
import pytest

from repro.memsim.synthetic import dense_standard_events, dense_strassen_events
from repro.memsim.trace import expand_trace
from repro.memsim.machine import ultrasparc_like
from repro.memsim.hierarchy import simulate_hierarchy


class TestDenseStandard:
    def test_leaf_count_power_of_two(self):
        ev = dense_standard_events(64, 16)
        assert len(ev) == 4**3  # (64/16)^3 products

    def test_covers_all_of_c(self):
        n, t = 48, 16
        ev = dense_standard_events(n, t)
        cover = np.zeros((n, n), dtype=int)
        for e in ev:
            w = e.write
            i0 = w.start % n
            j0 = w.start // n
            cover[i0 : i0 + w.rows, j0 : j0 + w.cols] += 1
        # Each C block is written once per k-block: n/t times.
        assert (cover == n // t).all()

    def test_uneven_sizes(self):
        # n not a multiple of the tile exercises the peeling splits.
        ev = dense_standard_events(50, 16)
        total_c = sum(e.write.n_elements for e in ev)
        # every leaf covers part of C; all of C covered ceil(50/16)+ times
        assert total_c >= 50 * 50

    def test_leaf_blocks_bounded_by_tile(self):
        for e in dense_standard_events(70, 16):
            assert e.write.rows <= 16 and e.write.cols <= 16
            for r in e.reads:
                assert r.rows <= 16 and r.cols <= 16

    def test_custom_ld(self):
        ev = dense_standard_events(32, 16, ld=100)
        assert all(e.write.col_stride == 100 for e in ev)

    def test_validation(self):
        with pytest.raises(ValueError):
            dense_standard_events(0, 16)


class TestDenseStrassen:
    def test_small_falls_back_to_standard(self):
        ev = dense_strassen_events(16, 16)
        assert len(ev) == 1 and ev[0].kind == "mul"

    def test_has_pre_and_post_adds(self):
        # Each non-leaf level contributes 10 pre-additions and 4 post-
        # addition combines: levels are 1 (top) + 7 (half-size) = 8.
        ev = dense_strassen_events(64, 16)
        adds = [e for e in ev if e.kind == "add"]
        assert len(adds) == 8 * 14

    def test_product_count(self):
        # depth: 64 -> 32 -> 16(leaf): 7 products per level => 49 leaves.
        ev = dense_strassen_events(64, 16)
        muls = [e for e in ev if e.kind == "mul"]
        assert len(muls) == 49

    def test_top_level_operands_strided_temps_contiguous(self):
        ev = dense_strassen_events(64, 16)
        adds = [e for e in ev if e.kind == "add"]
        # Pre-additions read the original matrices (spaces 1/2) strided.
        first_pre = adds[0]
        assert all(r.col_stride == 64 for r in first_pre.reads)
        assert first_pre.write.cols == 1  # contiguous temp

    def test_leading_dimension_halves(self):
        # Products below the top level run on halved-ld temporaries: the
        # paper's Section 5.1 robustness mechanism.
        ev = dense_strassen_events(64, 16)
        muls = [e for e in ev if e.kind == "mul"]
        strides = {r.col_stride for e in muls for r in e.reads if r.cols > 1}
        assert strides == {64, 32, 16}  # original, half temp, leaf temp

    def test_expandable(self):
        mach = ultrasparc_like()
        ev = dense_strassen_events(64, 16)
        addrs = expand_trace(ev, mach)
        assert len(addrs) > 0
        st = simulate_hierarchy(addrs, mach, include_tlb=False)
        assert st.l1_misses > 0


class TestRobustnessShape:
    """The core Figure 5 claim, at reduced scale."""

    @pytest.mark.slow
    def test_standard_lc_swings_strassen_flat(self):
        # Straddle the pathological n=128 (column stride aliasing the
        # direct-mapped L1) with a pinned tile-grid regime.
        mach = ultrasparc_like()
        tile, depth = 16, 3
        std_cpf, str_cpf = [], []
        for n in (120, 124, 128, 132, 136):
            flops = 2.0 * n**3
            ev = dense_standard_events(n, tile)
            std_cpf.append(
                simulate_hierarchy(expand_trace(ev, mach), mach).cycles / flops
            )
            ev = dense_strassen_events(n, tile, depth=depth)
            str_cpf.append(
                simulate_hierarchy(expand_trace(ev, mach), mach).cycles / flops
            )
        rel = lambda xs: (max(xs) - min(xs)) / min(xs)  # noqa: E731
        assert rel(std_cpf) > 2 * rel(str_cpf)
