"""The example scripts must stay runnable (fast ones run in-process)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestExamplesExist:
    def test_all_present(self):
        names = {p.stem for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart",
            "layout_gallery",
            "locality_maps",
            "tile_size_sweep",
            "robustness_scan",
            "parallel_scaling",
            "cholesky_factorization",
            "iterative_solver",
        } <= names

    def test_each_has_main(self):
        for p in EXAMPLES.glob("*.py"):
            text = p.read_text()
            assert "def main(" in text, p.name
            assert '__main__' in text, p.name


class TestFastExamplesRun:
    def test_layout_gallery(self, capsys):
        _load("layout_gallery").main()
        out = capsys.readouterr().out
        assert "--- LH" in out
        assert "Dilation statistics" in out

    def test_locality_maps(self, capsys):
        _load("locality_maps").main()
        out = capsys.readouterr().out
        assert "winograd" in out
        assert "●" in out

    def test_iterative_solver(self, capsys):
        _load("iterative_solver").main()
        out = capsys.readouterr().out
        assert "CG over Z-Morton" in out
        assert "agreement" in out

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "cost breakdown" in out
        assert "err=" in out

    @pytest.mark.slow
    def test_parallel_scaling(self, capsys):
        _load("parallel_scaling").main()
        out = capsys.readouterr().out
        assert "parallelism" in out
        assert "False sharing" in out
