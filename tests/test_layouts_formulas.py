"""The paper's closed-form S definitions (Section 3.1-3.3), verified.

Each layout's vectorized implementation is checked against a literal,
independent transcription of the paper's bit-string formula, plus the
structural facts the paper states (single/two/four orientations,
S(0,0) = 0, bijectivity).
"""

import numpy as np
import pytest

from repro.bits.gray import gray_decode_scalar, gray_encode_scalar
from repro.layouts.registry import get_layout
from tests.conftest import ALL_RECURSIVE


def _bits(x: int, d: int) -> list[int]:
    return [(x >> k) & 1 for k in range(d - 1, -1, -1)]  # MSB first


def _from_bits(bs: list[int]) -> int:
    out = 0
    for b in bs:
        out = (out << 1) | b
    return out


def _bowtie(u: int, v: int, d: int) -> int:
    """Literal u ⋈ v from the paper: u_{d-1} v_{d-1} ... u_0 v_0."""
    ub, vb = _bits(u, d), _bits(v, d)
    out = []
    for a, b in zip(ub, vb):
        out.extend([a, b])
    return _from_bits(out)


def _s_reference(name: str, i: int, j: int, d: int) -> int:
    if name == "LZ":
        return _bowtie(i, j, d)
    if name == "LU":
        return _bowtie(j, i ^ j, d)
    if name == "LX":
        return _bowtie(i ^ j, j, d)
    if name == "LG":
        return gray_decode_scalar(
            _bowtie(gray_encode_scalar(i), gray_encode_scalar(j), d)
        )
    raise KeyError(name)


@pytest.mark.parametrize("name", ["LZ", "LU", "LX", "LG"])
@pytest.mark.parametrize("order", [1, 2, 3, 4])
def test_matches_paper_formula(name, order):
    lay = get_layout(name)
    side = 1 << order
    for i in range(side):
        for j in range(side):
            assert lay.s_scalar(i, j, order) == _s_reference(name, i, j, order), (
                name,
                i,
                j,
            )


@pytest.mark.parametrize("name", ALL_RECURSIVE)
@pytest.mark.parametrize("order", [0, 1, 2, 3, 4])
def test_bijection(name, order):
    lay = get_layout(name)
    side = 1 << order
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    s = lay.s(ii, jj, order).astype(np.int64)
    assert sorted(s.ravel().tolist()) == list(range(side * side))


@pytest.mark.parametrize("name", ALL_RECURSIVE)
@pytest.mark.parametrize("order", [1, 2, 3, 5])
def test_inverse(name, order):
    lay = get_layout(name)
    side = 1 << order
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    s = lay.s(ii, jj, order)
    i2, j2 = lay.s_inv(s, order)
    np.testing.assert_array_equal(i2.reshape(ii.shape), ii)
    np.testing.assert_array_equal(j2.reshape(jj.shape), jj)


@pytest.mark.parametrize("name", ALL_RECURSIVE)
def test_origin_convention(name):
    # The paper adopts S(0, 0) = 0 for all layouts.
    lay = get_layout(name)
    for order in range(1, 6):
        assert lay.s_scalar(0, 0, order) == 0


@pytest.mark.parametrize("name", ALL_RECURSIVE)
@pytest.mark.parametrize("order", [1, 2, 3, 4])
def test_fsm_matches_closed_form(name, order):
    lay = get_layout(name)
    side = 1 << order
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    np.testing.assert_array_equal(
        lay.s(ii, jj, order).astype(np.int64),
        lay.s_fsm(ii, jj, order, 0).astype(np.int64),
    )
    # Inverse FSM agrees too.
    s = np.arange(side * side, dtype=np.uint64)
    i1, j1 = lay.s_inv(s, order)
    i2, j2 = lay.s_inv_fsm(s, order, 0)
    np.testing.assert_array_equal(i1, i2)
    np.testing.assert_array_equal(j1, j2)


def test_orientation_counts():
    # The paper's classification: one orientation for U/X/Z, two for
    # Gray-Morton, four for Hilbert.
    assert get_layout("LU").n_orientations == 1
    assert get_layout("LX").n_orientations == 1
    assert get_layout("LZ").n_orientations == 1
    assert get_layout("LG").n_orientations == 2
    assert get_layout("LH").n_orientations == 4


def test_single_orientation_locality_of_bits():
    # Paper Section 3.4: for single-orientation layouts, bits 2u+1, 2u of
    # S depend only on bit u of i and j.  Flipping a low bit of (i, j)
    # must not change higher output bits.
    for name in ("LU", "LX", "LZ"):
        lay = get_layout(name)
        order = 5
        for i in range(0, 32, 5):
            for j in range(0, 32, 7):
                base = lay.s_scalar(i, j, order)
                flipped = lay.s_scalar(i ^ 1, j, order)
                assert (base >> 2) == (flipped >> 2), name
