"""Cache simulation engines."""

import numpy as np
import pytest

from repro.memsim.cache import (
    LRUCache,
    miss_count,
    simulate_direct_mapped,
    simulate_lru,
)
from repro.memsim.machine import CacheGeometry


class TestDirectMapped:
    def test_cold_misses(self):
        geom = CacheGeometry(1024, 32, 1)
        addrs = np.arange(0, 1024, 32)
        miss = simulate_direct_mapped(addrs, geom)
        assert miss.all()  # first touch of every line

    def test_hits_on_repeat(self):
        geom = CacheGeometry(1024, 32, 1)
        addrs = np.concatenate([np.arange(0, 512, 32)] * 3)
        miss = simulate_direct_mapped(addrs, geom)
        assert miss[:16].all()
        assert not miss[16:].any()

    def test_conflict_thrash(self):
        # Two addresses one cache-size apart alternate: every access misses.
        geom = CacheGeometry(1024, 32, 1)
        addrs = np.array([0, 1024] * 50)
        miss = simulate_direct_mapped(addrs, geom)
        assert miss.all()

    def test_same_line_different_bytes_hit(self):
        geom = CacheGeometry(1024, 32, 1)
        miss = simulate_direct_mapped(np.array([0, 8, 16, 24]), geom)
        assert miss.tolist() == [True, False, False, False]

    def test_empty_trace(self):
        geom = CacheGeometry(1024, 32, 1)
        assert simulate_direct_mapped(np.array([], dtype=np.int64), geom).size == 0

    def test_rejects_associative(self):
        geom = CacheGeometry(1024, 32, 2)
        with pytest.raises(ValueError):
            simulate_direct_mapped(np.array([0]), geom)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_lru_reference(self, seed):
        # Direct-mapped LRU == direct-mapped: both exact.
        rng = np.random.default_rng(seed)
        geom = CacheGeometry(512, 32, 1)
        addrs = rng.integers(0, 8192, size=3000)
        np.testing.assert_array_equal(
            simulate_direct_mapped(addrs, geom), simulate_lru(addrs, geom)
        )


class TestLRU:
    def test_associativity_rescues_conflicts(self):
        # The thrash pattern above hits in a 2-way cache.
        direct = CacheGeometry(1024, 32, 1)
        twoway = CacheGeometry(1024, 32, 2)
        addrs = np.array([0, 1024] * 50)
        assert simulate_lru(addrs, direct).sum() == 100
        assert simulate_lru(addrs, twoway).sum() == 2

    def test_lru_eviction_order(self):
        # Fully-associative, 2 ways: A B C A -> A evicted by C? No: LRU
        # evicts A when C arrives, so the final A misses.
        geom = CacheGeometry(64, 32, 2)  # one set, 2 ways
        addrs = np.array([0, 64, 128, 0])
        miss = simulate_lru(addrs, geom)
        assert miss.tolist() == [True, True, True, True]

    def test_mru_retained(self):
        geom = CacheGeometry(64, 32, 2)
        addrs = np.array([0, 64, 0, 128, 0])  # touch 0 keeps it resident
        miss = simulate_lru(addrs, geom)
        assert miss.tolist() == [True, True, False, True, False]

    def test_stateful_reset(self):
        cache = LRUCache(CacheGeometry(64, 32, 2))
        assert cache.access(0) is True
        assert cache.access(0) is False
        cache.reset()
        assert cache.access(0) is True


class TestMissCount:
    def test_dispatch(self):
        addrs = np.array([0, 1024] * 10)
        assert miss_count(addrs, CacheGeometry(1024, 32, 1)) == 20
        assert miss_count(addrs, CacheGeometry(1024, 32, 2)) == 2


class TestGeometry:
    def test_n_sets(self):
        assert CacheGeometry(16 * 1024, 32, 1).n_sets == 512
        assert CacheGeometry(1024, 32, 4).n_sets == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 32, 1)
