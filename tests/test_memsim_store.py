"""On-disk trace/stats store: roundtrips, counters, keys, knobs."""

import json

import numpy as np
import pytest

from repro import knobs
from repro.memsim import store as store_mod
from repro.memsim.hierarchy import simulate_hierarchy
from repro.memsim.machine import modern_like, scaled, ultrasparc_like
from repro.memsim.store import (
    TraceStore,
    cached_multiply_stats,
    cached_multiply_trace,
    cached_synthetic_stats,
    cached_synthetic_trace,
    default_store,
)


@pytest.fixture
def store(tmp_path):
    return TraceStore(root=tmp_path, enabled=True)


MACH = scaled(4)


class TestRoundtrip:
    def test_trace_roundtrip_and_counters(self, store):
        a1 = cached_multiply_trace("standard", "LZ", 32, 8, MACH, store=store)
        a2 = cached_multiply_trace("standard", "LZ", 32, 8, MACH, store=store)
        assert np.array_equal(a1, a2)
        assert a1.dtype == np.int64
        assert store.counters() == {
            "trace_hits": 1,
            "trace_misses": 1,
            "stats_hits": 0,
            "stats_misses": 0,
            "profile_hits": 0,
            "profile_misses": 0,
        }

    def test_stats_roundtrip(self, store):
        s1 = cached_multiply_stats("standard", "LZ", 32, 8, MACH, store=store)
        s2 = cached_multiply_stats("standard", "LZ", 32, 8, MACH, store=store)
        assert s1 == s2
        assert store.stats_hits == 1 and store.stats_misses == 1
        # The stats hit short-circuits: no trace lookup on the second call.
        assert store.trace_hits == 0 and store.trace_misses == 1

    def test_stats_match_direct_simulation(self, store):
        addrs = cached_multiply_trace("standard", "LZ", 32, 8, MACH, store=store)
        cached = cached_multiply_stats("standard", "LZ", 32, 8, MACH, store=store)
        assert cached == simulate_hierarchy(addrs, MACH)

    def test_synthetic_roundtrip(self, store):
        a1 = cached_synthetic_trace("dense_standard", MACH, n=24, tile=8, store=store)
        a2 = cached_synthetic_trace("dense_standard", MACH, n=24, tile=8, store=store)
        assert np.array_equal(a1, a2)
        s = cached_synthetic_stats("dense_standard", MACH, n=24, tile=8, store=store)
        assert s == simulate_hierarchy(a1, MACH)

    def test_unknown_synthetic_source(self, store):
        with pytest.raises(KeyError):
            cached_synthetic_trace("nope", MACH, n=8, tile=4, store=store)


class TestKeys:
    def test_distinct_parameters_distinct_entries(self, store):
        cached_multiply_trace("standard", "LZ", 32, 8, MACH, store=store)
        cached_multiply_trace("standard", "LZ", 32, 4, MACH, store=store)
        cached_multiply_trace("standard", "LU", 32, 8, MACH, store=store)
        cached_multiply_trace("strassen", "LZ", 32, 8, MACH, store=store)
        assert store.trace_misses == 4 and store.trace_hits == 0

    def test_machine_pricing_does_not_split_traces(self, store):
        # Same expansion geometry, different cycle costs: one trace file,
        # two stats entries.
        import dataclasses

        m1 = MACH
        m2 = dataclasses.replace(MACH, mem=500.0)
        s1 = cached_multiply_stats("standard", "LZ", 32, 8, m1, store=store)
        s2 = cached_multiply_stats("standard", "LZ", 32, 8, m2, store=store)
        assert store.trace_misses == 1
        assert store.stats_misses == 2
        if knobs.flag("REPRO_MULTICONFIG"):
            # The second machine answers from the warm reuse-distance
            # profile without even touching the trace artifact.
            assert store.trace_hits == 0
            assert store.profile_misses == 1 and store.profile_hits == 1
        else:
            assert store.trace_hits == 1
        assert s1.l1_misses == s2.l1_misses and s1.cycles != s2.cycles

    def test_machine_geometry_splits_stats(self, store):
        s1 = cached_multiply_stats("standard", "LZ", 32, 8, ultrasparc_like(), store=store)
        s2 = cached_multiply_stats("standard", "LZ", 32, 8, modern_like(), store=store)
        assert store.stats_misses == 2
        assert s1 != s2

    def test_include_tlb_splits_stats(self, store):
        s1 = cached_multiply_stats("standard", "LZ", 32, 8, MACH, store=store)
        s2 = cached_multiply_stats(
            "standard", "LZ", 32, 8, MACH, include_tlb=False, store=store
        )
        assert store.stats_misses == 2
        assert s2.tlb_misses == 0 and s1.tlb_misses > 0

    def test_key_is_canonical(self):
        k1 = TraceStore.key_of({"a": 1, "b": 2})
        k2 = TraceStore.key_of({"b": 2, "a": 1})
        assert k1 == k2 and len(k1) == 64


class TestRobustness:
    def test_corrupt_trace_file_is_rebuilt(self, store):
        cached_multiply_trace("standard", "LZ", 32, 8, MACH, store=store)
        (npy,) = list(store.root.rglob("*.npy"))
        npy.write_bytes(b"not a numpy file")
        again = cached_multiply_trace("standard", "LZ", 32, 8, MACH, store=store)
        assert store.trace_misses == 2
        assert np.array_equal(again, np.load(npy))

    def test_corrupt_stats_file_is_rebuilt(self, store):
        cached_multiply_stats("standard", "LZ", 32, 8, MACH, store=store)
        (js,) = list(store.root.rglob("*.json"))
        js.write_text(json.dumps({"bogus": 1}))
        s = cached_multiply_stats("standard", "LZ", 32, 8, MACH, store=store)
        assert store.stats_misses == 2
        assert s.accesses > 0

    def test_reset_counters(self, store):
        cached_multiply_trace("standard", "LZ", 32, 8, MACH, store=store)
        store.reset_counters()
        assert not any(store.counters().values())


class TestKnobs:
    def test_disabled_store_touches_no_disk(self, tmp_path):
        off = TraceStore(root=tmp_path / "off", enabled=False)
        s = cached_multiply_stats("standard", "LZ", 32, 8, MACH, store=off)
        assert s.accesses > 0
        assert not (tmp_path / "off").exists()
        assert not any(off.counters().values())

    def test_env_knob_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert TraceStore(root=tmp_path).enabled is False
        monkeypatch.setenv("REPRO_TRACE_CACHE", "1")
        assert TraceStore(root=tmp_path).enabled is True

    def test_env_root_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "alt"))
        assert TraceStore().root == tmp_path / "alt"

    def test_default_store_singleton(self):
        assert default_store() is default_store()

    def test_default_root_under_benchmarks(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        s = TraceStore()
        assert s.root.name == "tracecache"
        assert s.root.parent.name == ".benchmarks"
        assert (store_mod._repo_root() / "ROADMAP.md").exists()
