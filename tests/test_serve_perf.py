"""Service-session perf records: ``repro serve --append-history`` feeds
the regression-tracking store and the serve latency budgets gate.

A serve session that shuts down cleanly appends exactly one record to
the ``serve`` history stream (source ``serve:session``).  These tests
run *real* service sessions (subprocess, HTTP, clean shutdown) against
a fixed workload and pin:

* the record's shape: flattened ``serve.*`` metrics including the
  latency percentiles (``serve.request.p99`` — histograms flatten to
  mean/count only, so the percentiles ride in as extra metrics) and
  the structural row count ``serve.sweep.rows``;
* the budget declarations the record feeds: ``serve.request.p99`` is a
  lower-better latency SLO, ``serve.sweep.rows`` an exact structural
  key — the only serve key gated under ``REPRO_DETERMINISTIC_TIMING``;
* the round trip: two identical sessions' records pass
  ``repro perf check`` bit-for-bit on the structural leg, and a
  perturbed row count trips the gate.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro import knobs
from repro.perf import compare_records
from repro.serve.client import ServeClient

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKLOAD = {
    "n": 48,
    "tile": 8,
    "algorithms": ["standard", "strassen"],
    "layouts": ["LC", "LZ"],
    "machine": {"scaled": 4},
}

READY_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def _run_session(workdir: Path) -> dict:
    """One full service session over the fixed workload; its record."""
    env = dict(os.environ)
    env.update(
        PYTHONPATH=str(REPO_ROOT / "src"),
        REPRO_DETERMINISTIC_TIMING="1",
        REPRO_TRACE_CACHE_DIR=str(workdir / "cache"),
        REPRO_OBS_DIR=str(workdir / "obs"),
        REPRO_PERF_HISTORY="1",
        REPRO_PERF_HISTORY_DIR=str(workdir / "history"),
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--jobs", "2",
         "--append-history"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        line = proc.stdout.readline()
        match = READY_RE.search(line)
        assert match, f"no readiness line: {line!r}\n{proc.stderr.read()}"
        client = ServeClient(f"http://127.0.0.1:{match.group(2)}", timeout=300.0)
        client.wait_ready(timeout=30.0)
        # Fixed workload: serial leg, pooled leg, one metrics read.
        client.rows("fig6sim", WORKLOAD, jobs=1)
        client.rows("fig6sim", WORKLOAD, jobs=2)
        client.metrics()
        code, payload = client.shutdown()
        assert code == 200
        history_path = payload["history"]
        assert history_path, "shutdown did not flush a history record"
        proc.wait(timeout=30)
    finally:
        proc.kill()
        proc.wait(timeout=10)
        proc.stdout.close()
        proc.stderr.close()
    lines = Path(history_path).read_text().splitlines()
    assert len(lines) == 1, "expected exactly one record per session"
    return json.loads(lines[0])


@pytest.fixture(scope="module")
def session_records(tmp_path_factory):
    """Two independent, identical service sessions' history records."""
    return (
        _run_session(tmp_path_factory.mktemp("serve-a")),
        _run_session(tmp_path_factory.mktemp("serve-b")),
    )


def test_session_record_shape(session_records):
    record, _ = session_records
    assert record["source"] == "serve:session"
    assert record["manifest"]["command"] == "serve"
    metrics = record["metrics"]
    # The latency percentiles arrive as extra metrics (histograms
    # flatten to mean/count only in record_from_obs).
    for key in ("serve.request.p50", "serve.request.p90",
                "serve.request.p99"):
        assert key in metrics
        assert metrics[key] == 0.0  # deterministic timing: exact zeros
    # Structural truth of the fixed workload: two fig6sim sweeps of
    # 2 algorithms x 2 layouts = 8 rows total.
    assert metrics["serve.sweep.rows"] == 8
    assert metrics["serve.jobs.executed"] == 2
    assert metrics["serve.request_seconds.count"] > 0
    # The session shares one warm store across both legs: the jobs=2
    # leg answered from stats cached by the jobs=1 leg.
    assert metrics["trace_cache.stats_hits"] >= 4


def test_serve_budgets_are_declared():
    p99 = knobs.budget_for("serve.request.p99")
    assert p99 is not None and p99.direction == "lower_better"
    rows = knobs.budget_for("serve.sweep.rows")
    assert rows is not None and rows.direction == "exact"
    assert rows.max_regression == 0.0


def test_identical_sessions_pass_the_structural_gate(session_records):
    """Two identical sessions: the exact serve.sweep.rows budget gates
    and passes; latency keys are skipped under deterministic timing."""
    base, cand = session_records
    comparison = compare_records(base, cand, structural_only=True)
    assert comparison["ok"], comparison["summary"]
    rows_entry = comparison["keys"]["serve.sweep.rows"]
    assert rows_entry["gated"]
    assert rows_entry["class"] == "unchanged"
    p99_entry = comparison["keys"]["serve.request.p99"]
    assert p99_entry["class"] == "skipped"  # timing keys don't gate here


def test_perturbed_row_count_trips_the_gate(session_records):
    base, cand = session_records
    perturbed = json.loads(json.dumps(cand))
    perturbed["metrics"]["serve.sweep.rows"] += 1
    comparison = compare_records(base, perturbed, structural_only=True)
    assert not comparison["ok"]
    assert "serve.sweep.rows" in comparison["summary"]["over_budget"]


def test_perf_check_cli_round_trip(session_records, tmp_path):
    """The records survive the CLI gate: ``repro perf check`` exits 0 on
    identical sessions and 1 on a perturbed candidate."""
    base, cand = session_records
    base_path = tmp_path / "base.json"
    cand_path = tmp_path / "cand.json"
    base_path.write_text(json.dumps(base))
    cand_path.write_text(json.dumps(cand))
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"),
               REPRO_DETERMINISTIC_TIMING="1")

    def check(candidate: Path) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "repro", "perf", "check",
             "--against", str(base_path), "--candidate", str(candidate)],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )

    result = check(cand_path)
    assert result.returncode == 0, result.stdout + result.stderr

    perturbed = json.loads(json.dumps(cand))
    perturbed["metrics"]["serve.sweep.rows"] += 1
    bad_path = tmp_path / "bad.json"
    bad_path.write_text(json.dumps(perturbed))
    result = check(bad_path)
    assert result.returncode == 1, result.stdout + result.stderr
    assert "serve.sweep.rows" in result.stdout
