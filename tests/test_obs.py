"""The observability layer: spans, metrics, manifests, disabled-mode cost."""

import json
import threading

import pytest

from repro import obs
from repro.obs.core import NULL_SPAN


@pytest.fixture
def obs_on():
    """Enable obs with clean state; restore disabled+clean afterwards."""
    was = obs.enabled()
    obs.set_enabled(True)
    obs.reset()
    yield
    obs.set_enabled(was)
    obs.reset()


@pytest.fixture
def obs_off():
    was = obs.enabled()
    obs.set_enabled(False)
    obs.reset()
    yield
    obs.set_enabled(was)
    obs.reset()


class TestSpans:
    def test_disabled_returns_shared_null_span(self, obs_off):
        s = obs.span("anything", n=1)
        assert s is NULL_SPAN
        with s:
            pass
        assert obs.collector().spans() == []

    def test_records_name_attrs_duration(self, obs_on):
        with obs.span("fig4.point", n=64, tile=8):
            pass
        (rec,) = obs.collector().spans()
        assert rec["name"] == "fig4.point"
        assert rec["attrs"] == {"n": 64, "tile": 8}
        assert rec["dur"] >= 0.0
        assert rec["parent"] is None

    def test_nesting_sets_parent(self, obs_on):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = obs.collector().spans()
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_set_updates_attrs(self, obs_on):
        with obs.span("s") as sp:
            sp.set(extra=7)
        (rec,) = obs.collector().spans()
        assert rec["attrs"]["extra"] == 7

    def test_span_closed_on_exception(self, obs_on):
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        (rec,) = obs.collector().spans()
        assert rec["name"] == "boom"
        # Parent stack unwound: the next span is a root again.
        with obs.span("after"):
            pass
        assert obs.collector().spans()[-1]["parent"] is None

    def test_counts_and_totals(self, obs_on):
        for _ in range(3):
            with obs.span("a"):
                pass
        with obs.span("b"):
            pass
        assert obs.collector().counts() == {"a": 3, "b": 1}
        assert set(obs.collector().totals()) == {"a", "b"}

    def test_thread_safety_and_per_thread_parents(self, obs_on):
        def worker():
            with obs.span("t.outer"):
                with obs.span("t.inner"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        recs = obs.collector().spans()
        assert len(recs) == 16
        inners = [r for r in recs if r["name"] == "t.inner"]
        outers = {r["id"]: r for r in recs if r["name"] == "t.outer"}
        for r in inners:
            # Each inner's parent is an outer from the *same* thread.
            assert outers[r["parent"]]["tid"] == r["tid"]

    def test_export_jsonl(self, obs_on, tmp_path):
        with obs.span("x", k=1):
            pass
        path = obs.collector().export_jsonl(tmp_path / "spans.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["name"] == "x" and rec["attrs"] == {"k": 1}


class TestMetrics:
    def test_disabled_is_noop(self, obs_off):
        obs.add("c", 5)
        obs.gauge("g", 1.0)
        obs.observe("h", 2.0)
        snap = obs.registry().snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_counter_gauge_histogram(self, obs_on):
        obs.add("c")
        obs.add("c", 4)
        obs.gauge("g", 2.5)
        for v in (1.0, 3.0):
            obs.observe("h", v)
        snap = obs.registry().snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        h = snap["histograms"]["h"]
        assert h["count"] == 2 and h["total"] == 4.0
        assert h["min"] == 1.0 and h["max"] == 3.0 and h["mean"] == 2.0
        assert h["samples"] == 2 and h["sample_values"] == [1.0, 3.0]
        # Nearest-rank at n=2: p50 is the first sorted sample, p90/p99
        # are the maximum — observed values, never interpolated.
        assert h["p50"] == 1.0 and h["p90"] == 3.0 and h["p99"] == 3.0

    def test_counter_rejects_negative(self, obs_on):
        with pytest.raises(ValueError):
            obs.registry().counter("c").inc(-1)

    def test_render_report_mentions_everything(self, obs_on):
        obs.add("memsim.store.trace_hits", 3)
        with obs.span("fig5.point", n=16):
            pass
        text = obs.render_report()
        assert "trace cache" in text
        assert "fig5.point" in text
        assert "memsim.store.trace_hits = 3" in text


class TestStatsPublishing:
    def test_memory_stats_publish(self, obs_on):
        from repro.memsim.hierarchy import MemoryStats

        MemoryStats(100, 10, 5, 1, 1234.0).publish()
        snap = obs.registry().snapshot()
        assert snap["counters"]["memsim.accesses"] == 100
        assert snap["counters"]["memsim.l1_misses"] == 10
        assert snap["histograms"]["memsim.l1_miss_rate"]["mean"] == pytest.approx(0.1)

    def test_schedule_result_publish(self, obs_on):
        from repro.runtime.scheduler import ScheduleResult

        ScheduleResult(
            makespan=10.0, n_workers=2, busy_time=18.0, steals=3, failed_steals=1
        ).publish("scheduler.ws")
        snap = obs.registry().snapshot()
        assert snap["counters"]["scheduler.ws.steals"] == 3
        rate = snap["histograms"]["scheduler.ws.steal_success_rate"]
        assert rate["mean"] == pytest.approx(0.75)

    def test_store_publishes_hit_miss_counters(self, obs_on, tmp_path):
        from repro.memsim.machine import scaled
        from repro.memsim.store import TraceStore, cached_synthetic_stats

        store = TraceStore(root=tmp_path, enabled=True)
        machine = scaled()
        cached_synthetic_stats("dense_standard", machine, store=store, n=16, tile=8)
        cached_synthetic_stats("dense_standard", machine, store=store, n=16, tile=8)
        snap = obs.registry().snapshot()
        assert snap["counters"]["memsim.store.stats_misses"] == 1
        assert snap["counters"]["memsim.store.stats_hits"] == 1
        assert snap["counters"]["memsim.simulations"] == 2
        addrs = store.content_addresses()
        # One stats key + one trace key (+ one profile key when the
        # multi-config path answers the stats miss).
        kinds = {a.split(":", 1)[0] for a in addrs}
        assert kinds >= {"stats", "trace"} and kinds <= {
            "stats", "trace", "profile"
        }
        assert any(a.startswith("stats:") and a.endswith("=miss") for a in addrs)


class TestManifest:
    def test_build_and_write(self, tmp_path):
        from repro.memsim.machine import ultrasparc_like
        from repro.memsim.store import TraceStore

        store = TraceStore(root=tmp_path / "cache", enabled=True)
        m = obs.build_manifest(
            command="test", argv=["x"], seed=7,
            machine=ultrasparc_like(), store=store, extra={"k": "v"},
        )
        assert m["schema_version"] == 1
        assert m["seed"] == 7
        assert m["command"] == "test"
        assert m["k"] == "v"
        assert len(m["machine"]["sha256"]) == 64
        assert m["trace_cache"]["trace_hits"] == 0
        path = obs.write_manifest(tmp_path / "m.json", m)
        loaded = json.loads(path.read_text())
        assert loaded["machine"]["sha256"] == m["machine"]["sha256"]

    def test_machine_fingerprint_is_stable(self):
        from repro.memsim.machine import ultrasparc_like
        from repro.obs.manifest import machine_fingerprint

        a = machine_fingerprint(ultrasparc_like())
        b = machine_fingerprint(ultrasparc_like())
        assert a["sha256"] == b["sha256"]

    def test_git_revision_shape(self):
        from repro.obs.manifest import git_revision

        rev = git_revision()
        if rev is not None:  # repo checkouts in CI may differ
            assert len(rev["sha"]) == 40

    def test_obs_section_present_when_enabled(self, obs_on):
        with obs.span("s"):
            pass
        m = obs.build_manifest(store=False)
        assert m["obs"]["span_counts"] == {"s": 1}


class TestDisabledOverhead:
    def test_instrumented_paths_record_nothing_when_off(self, obs_off):
        from repro.analysis.experiments import fig2_layouts
        from repro.analysis.timing import measure

        fig2_layouts(2)
        measure(lambda: None, repeats=1, warmup=0)
        assert obs.collector().spans() == []
        snap = obs.registry().snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}


class TestSpanJsonlReading:
    def test_missing_file_raises_clear_error(self, tmp_path):
        with pytest.raises(obs.SpanReadError, match="not found"):
            obs.read_spans_jsonl(tmp_path / "nope.jsonl")

    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            '{"id": 1, "name": "good", "dur": 1.0}\n'
            "{truncated by a killed worker\n"
            "\n"
            "[1, 2, 3]\n"
            '{"id": 2, "name": "also_good", "dur": 0.5}\n'
        )
        records, skipped = obs.read_spans_jsonl(path)
        assert [r["name"] for r in records] == ["good", "also_good"]
        assert skipped == 2

    def test_load_spans_jsonl_drops_the_count(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"id": 1, "name": "s", "dur": 1.0}\nbad\n')
        assert len(obs.load_spans_jsonl(path)) == 1

    def test_percentiles_validate_range(self):
        from repro.obs.metrics import Histogram

        h = Histogram()
        assert h.percentile(50) is None  # nothing retained
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_nearest_rank_small_samples(self):
        from repro.obs.metrics import Histogram

        h = Histogram()
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            h.observe(v)
        # nearest-rank over n=5: rank(p) = ceil(p/100 * 5)
        assert h.percentile(50) == 3.0
        assert h.percentile(90) == 5.0
        assert h.percentile(99) == 5.0
        assert h.percentile(20) == 1.0

    def test_rendered_report_carries_samples_count(self, obs_on):
        for v in (1.0, 2.0, 3.0):
            obs.observe("h.seconds", v)
        text = obs.render_report()
        assert "samples=3" in text
        assert "p50=2" in text

    def test_sample_buffer_caps(self):
        from repro.obs.metrics import Histogram

        h = Histogram()
        for i in range(Histogram.MAX_SAMPLES + 100):
            h.observe(float(i))
        assert h.count == Histogram.MAX_SAMPLES + 100
        assert len(h.samples) == Histogram.MAX_SAMPLES
