"""Blocked-canonical ablation layout (tiling without recursive order)."""

import pytest

from repro.memsim.hierarchy import simulate_hierarchy
from repro.memsim.machine import ultrasparc_like
from repro.memsim.synthetic import (
    blocked_canonical_events,
    dense_standard_events,
)
from repro.memsim.trace import expand_trace


class TestGenerator:
    def test_same_event_count_as_dense(self):
        n, t = 64, 16
        assert len(blocked_canonical_events(n, t)) == len(
            dense_standard_events(n, t)
        )

    def test_tiles_contiguous_and_2d(self):
        for ev in blocked_canonical_events(48, 16):
            for r in ev.reads + (ev.write,):
                assert r.rows == 16 and r.cols == 16
                assert r.col_stride == 16  # contiguous column-major tile
                assert r.start % 256 == 0  # tile-aligned

    def test_covers_all_tiles(self):
        n, t = 64, 16
        side = n // t
        ev = blocked_canonical_events(n, t)
        c_tiles = {e.write.start // (t * t) for e in ev}
        assert c_tiles == set(range(side * side))

    def test_uneven_n_pads_grid(self):
        ev = blocked_canonical_events(50, 16)
        side = 4  # ceil(50/16)
        c_tiles = {e.write.start // 256 for e in ev}
        assert c_tiles == set(range(side * side))

    def test_validation(self):
        with pytest.raises(ValueError):
            blocked_canonical_events(0, 16)


class TestAblationShape:
    def test_immune_to_pathological_n(self):
        # Tiles are contiguous, so the n=256 column-aliasing pathology
        # of the unpadded canonical layout cannot occur.  (The range is
        # chosen where pad ratios are small, so swings isolate cache
        # behaviour.)
        mach = ultrasparc_like()
        t = 16
        cpf = {}
        for n in (248, 256, 264):
            flops = 2.0 * n**3
            st = simulate_hierarchy(
                expand_trace(blocked_canonical_events(n, t), mach), mach
            )
            cpf[n] = st.cycles / flops
        swing = (max(cpf.values()) - min(cpf.values())) / min(cpf.values())
        assert swing < 0.35

    def test_beats_canonical_at_pathological_n(self):
        mach = ultrasparc_like()
        n, t = 256, 16
        flops = 2.0 * n**3
        lc = simulate_hierarchy(
            expand_trace(dense_standard_events(n, t), mach), mach
        )
        bc = simulate_hierarchy(
            expand_trace(blocked_canonical_events(n, t), mach), mach
        )
        assert lc.cycles / flops > 1.5 * bc.cycles / flops
