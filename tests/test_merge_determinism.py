"""Property tests: :func:`merge_payloads` is completion-order invariant.

The pool collects worker payloads with ``as_completed`` — an order the
OS scheduler picks.  Determinism of the whole sweep therefore rests on
the merge being a pure function of the *point grid*, not of the payload
arrival order.  Hypothesis drives arbitrary permutations (and grid
sizes) through the merge and asserts identical rows and identical
store-counter side effects every time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.parallel import make_point, merge_payloads
from repro.memsim.store import TraceStore


def _grid(size):
    return [make_point("prop", i, "fig6sim.point", n=i) for i in range(size)]


def _payloads(size):
    return [
        {
            "index": i,
            "row": {"point": i, "value": i * i},
            "store_counters": {"stats_hits": i, "trace_misses": 1},
            "store_touched": {f"stats:key{i}": "hit" if i % 2 else "miss"},
        }
        for i in range(size)
    ]


@st.composite
def permuted_sweep(draw):
    size = draw(st.integers(min_value=1, max_value=12))
    order = draw(st.permutations(range(size)))
    return size, [_payloads(size)[i] for i in order]


@given(permuted_sweep())
@settings(max_examples=60, deadline=None)
def test_rows_invariant_under_completion_order(case):
    size, shuffled = case
    assert merge_payloads(_grid(size), shuffled) == [
        p["row"] for p in _payloads(size)
    ]


@given(permuted_sweep())
@settings(max_examples=60, deadline=None)
def test_store_side_effects_invariant_under_completion_order(case):
    size, shuffled = case
    # Give the merge a private store so the property is observable in
    # isolation (merge_payloads folds counters into the default store).
    # Swapped by hand: hypothesis forbids the function-scoped
    # monkeypatch fixture inside @given.
    import repro.memsim.store as store_mod

    store = TraceStore(root="/tmp/unused-prop-store", enabled=False)
    saved = store_mod._DEFAULT
    store_mod._DEFAULT = store
    try:
        merge_payloads(_grid(size), shuffled)
    finally:
        store_mod._DEFAULT = saved
    assert store.stats_hits == sum(range(size))
    assert store.trace_misses == size
    # Touched keys land in point order regardless of arrival order.
    assert list(store.touched_map()) == [f"stats:key{i}" for i in range(size)]


@given(st.integers(min_value=2, max_value=8), st.data())
@settings(max_examples=30, deadline=None)
def test_duplicate_index_always_rejected(size, data):
    import pytest

    payloads = _payloads(size)
    dup_of = data.draw(st.integers(min_value=0, max_value=size - 1))
    payloads.append(dict(payloads[dup_of]))
    with pytest.raises(RuntimeError, match="duplicate"):
        merge_payloads(_grid(size), payloads)


@given(st.integers(min_value=2, max_value=8), st.data())
@settings(max_examples=30, deadline=None)
def test_missing_index_always_rejected(size, data):
    import pytest

    payloads = _payloads(size)
    drop = data.draw(st.integers(min_value=0, max_value=size - 1))
    del payloads[drop]
    with pytest.raises(RuntimeError, match=f"never completed: \\[{drop}\\]"):
        merge_payloads(_grid(size), payloads)
