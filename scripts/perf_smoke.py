#!/usr/bin/env python
"""Perf smoke test for the vectorized memory-system engines.

Times the batched engines against the scalar reference simulators and
writes ``BENCH_memsim.json`` with accesses/sec per engine plus the
measured speedups.  CI runs this to catch perf regressions: the
vectorized 8-way set-associative and fully-associative (TLB/3C) paths
must stay an order of magnitude ahead of the reference engines.

The speedup comparison runs on uniform-random streams: real traces are
locality-heavy, which lets the scalar references take their cheap hit
paths while random streams exercise both sides' steady-state per-access
cost.  Real-trace throughput (the standard/L_Z n=256 multiply, the unit
of work a sweep point pays on a cache miss) is reported alongside.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py [output.json]
        [--append-history] [--history-dir DIR]

``--append-history`` also appends the run as one content-addressed
record to the ``perf_smoke`` stream of the benchmark-history store
(``.benchmarks/history/``), which feeds the noise-tolerance bands and
trajectory views of ``python -m repro perf``.

Environment:

* ``SMOKE_ACCESSES`` — stream length (default 1_000_000).
* ``SMOKE_SKIP_REFERENCE=1`` — skip the slow scalar baselines (the
  JSON then carries engine throughputs only, no speedup ratios).
* ``SMOKE_JOBS`` — worker count for the parallel-sweep comparison
  (default 4).  The >=2x speedup floor is only enforced when the box
  actually has >= 4 CPUs; the measured ratio is recorded regardless.
* ``SMOKE_SPEEDUP_FLOOR`` — required engine-vs-reference speedup
  (default 10).  Lower it when benchmarking on loaded/1-core hosts
  where the ratio is noisy; CI keeps the default.
* ``SMOKE_SYNTHESIS_FLOOR`` — required symbolic-trace-synthesis vs
  executed-tracer speedup on the fig6sim grid (default 5).
* ``SMOKE_MULTICONFIG_FLOOR`` — required build-once-query-many
  reuse-distance-profile speedup vs per-config streaming replay over
  the 16-machine associativity/TLB grid (default 3).
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.analysis.parallel import fig4_points, run_sweep
from repro.layouts.registry import PAPER_LAYOUTS
from repro.memsim.cache import LRUCache, simulate_direct_mapped
from repro.memsim.engines import lru_hit_mask, simulate_set_associative
from repro.memsim.hierarchy import simulate_hierarchy
from repro.memsim.machine import (
    CacheGeometry,
    assoc_scaled,
    modern_like,
    ultrasparc_like,
)
from repro.memsim.multiconfig import build_profile
from repro.memsim.store import cached_multiply_trace, default_store
from repro.memsim.synthesis import expand_table, synthesize_multiply
from repro.memsim.trace import expand_trace, trace_multiply
from repro.obs.manifest import build_manifest

N = 256
TILE = 16
TARGET = int(os.environ.get("SMOKE_ACCESSES", 1_000_000))


def timed(fn, *args, repeats: int = 3):
    """Best-of-N wall time and the last result."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def oracle_fa_misses(keys: np.ndarray, capacity: int) -> int:
    """Dict-based fully-associative LRU (the pre-vectorization TLB path)."""
    stack: dict[int, None] = {}
    misses = 0
    for k in keys.tolist():
        if k in stack:
            del stack[k]
        else:
            misses += 1
            if len(stack) >= capacity:
                del stack[next(iter(stack))]
        stack[k] = None
    return misses


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="perf smoke test for the vectorized memory-system engines"
    )
    parser.add_argument("out", nargs="?", default="BENCH_memsim.json",
                        help="output JSON path (the 'latest' view)")
    parser.add_argument("--append-history", action="store_true",
                        help="also append a content-addressed record to the "
                             "benchmark-history store (.benchmarks/history/)")
    parser.add_argument("--history-dir", default=None,
                        help="history store root (default: "
                             "REPRO_PERF_HISTORY_DIR, else .benchmarks/history)")
    return parser.parse_args(argv)


def append_history(results: dict, history_dir=None):
    """One provenance-linked history record for this run; returns
    ``(record, stream_path)`` or None when the store is disabled."""
    from repro.perf.history import HistoryStore, history_enabled, record_from_bench

    if not history_enabled():
        print("history: disabled (REPRO_PERF_HISTORY=0)")
        return None
    record = record_from_bench(results, source="perf_smoke")
    path = HistoryStore(history_dir).append(record, stream="perf_smoke")
    print(f"history: appended {record['record_id'][:12]} to {path}")
    return record, path


def main(argv=None) -> None:
    args = parse_args(argv)
    out_path = args.out
    skip_ref = os.environ.get("SMOKE_SKIP_REFERENCE") == "1"
    mach = ultrasparc_like()
    modern = modern_like()

    # Expand the real trace through the content-addressed store: the
    # counters below make cache behaviour visible (a keying regression
    # that silently re-simulates everything shows up as misses on a
    # warm store).
    store = default_store()
    store.reset_counters()
    t0 = time.perf_counter()
    addresses = cached_multiply_trace("standard", "LZ", N, TILE, mach, store=store)
    expand_seconds = time.perf_counter() - t0
    cold_counters = store.counters()
    t0 = time.perf_counter()
    cached_multiply_trace("standard", "LZ", N, TILE, mach, store=store)
    warm_seconds = time.perf_counter() - t0
    if addresses.size < TARGET:
        addresses = np.tile(addresses, -(-TARGET // addresses.size))
    addresses = addresses[:TARGET]
    n = int(addresses.size)

    results: dict = {
        "trace": {
            "algorithm": "standard",
            "layout": "LZ",
            "n": N,
            "tile": TILE,
            "accesses": n,
            "expand_seconds": round(expand_seconds, 3),
            "warm_expand_seconds": round(warm_seconds, 4),
        },
        "trace_cache": {
            "enabled": store.enabled,
            "first_call_was_hit": cold_counters["trace_hits"] > 0,
            **store.counters(),
        },
        "engines": {},
    }
    c = store.counters()
    print(
        f"trace cache ({'on' if store.enabled else 'off'}): "
        f"{c['trace_hits']} hit / {c['trace_misses']} miss; "
        f"cold expand {expand_seconds:.3f}s, warm {warm_seconds:.4f}s"
    )

    def record(name, engine_seconds, ref_seconds=None):
        entry = {
            "seconds": round(engine_seconds, 4),
            "accesses_per_sec": round(n / engine_seconds),
        }
        if ref_seconds is not None:
            entry["reference_seconds"] = round(ref_seconds, 2)
            entry["speedup"] = round(ref_seconds / engine_seconds, 1)
        results["engines"][name] = entry
        rate = entry["accesses_per_sec"]
        speedup = f"  {entry.get('speedup', '-')}x vs reference" if ref_seconds else ""
        print(f"{name:28s} {engine_seconds:8.3f}s  {rate:>12,d} acc/s{speedup}")

    rng = np.random.default_rng(42)
    random_addresses = rng.integers(0, 1 << 22, n).astype(np.int64)

    # Direct-mapped (the paper-geometry L1 path; engine only, it has
    # been vectorized since the seed).
    sec, _ = timed(lambda: simulate_direct_mapped(random_addresses, mach.l1))
    record("direct_mapped_l1", sec)

    # 8-way set-associative LRU (modern geometry), random stream.
    sec, miss = timed(lambda: simulate_set_associative(random_addresses, modern.l1))
    if skip_ref:
        record("set_associative_8way", sec)
    else:
        rsec, rmiss = timed(
            lambda: LRUCache(modern.l1).access_many(random_addresses), repeats=2
        )
        assert np.array_equal(miss, rmiss), "engine diverged from oracle"
        record("set_associative_8way", sec, rsec)

    # Fully-associative LRU at TLB capacity (64 entries) over a random
    # page-id stream — the TLB / 3C-classification engine.  Reference:
    # the repo's validation oracle (LRUCache with a single-set
    # geometry); the seed's special-cased dict loop is timed alongside
    # for transparency (CPython dicts make it a much stronger baseline
    # than the general oracle).
    pages = rng.integers(0, 4096, n).astype(np.int64)
    sec, hits = timed(lambda: lru_hit_mask(pages, mach.tlb_entries))
    if skip_ref:
        record("fully_associative_lru", sec)
    else:
        fa_geom = CacheGeometry(
            mach.tlb_entries * mach.page, mach.page, mach.tlb_entries
        )
        rsec, rmiss = timed(
            lambda: LRUCache(fa_geom).access_many(pages * mach.page), repeats=2
        )
        assert np.array_equal(~hits, rmiss), "engine diverged from oracle"
        dsec, dmiss = timed(
            lambda: oracle_fa_misses(pages, mach.tlb_entries), repeats=2
        )
        assert int((~hits).sum()) == dmiss, "engine diverged from dict loop"
        record("fully_associative_lru", sec, rsec)
        results["engines"]["fully_associative_lru"]["seed_dict_seconds"] = round(
            dsec, 2
        )
        results["engines"]["fully_associative_lru"]["speedup_vs_seed_dict"] = round(
            dsec / sec, 1
        )

    # Whole-hierarchy simulation of the real n=256 trace (both levels
    # plus TLB) — the unit of work every sweep point pays on a cache miss.
    sec, stats = timed(lambda: simulate_hierarchy(addresses, mach))
    record("hierarchy_ultrasparc", sec)
    results["engines"]["hierarchy_ultrasparc"]["l1_miss_rate"] = round(
        stats.l1_miss_rate, 4
    )
    sec, _ = timed(lambda: simulate_hierarchy(addresses, modern))
    record("hierarchy_modern_8way", sec)

    if not skip_ref:
        floor = float(os.environ.get("SMOKE_SPEEDUP_FLOOR", "10"))
        for name in ("set_associative_8way", "fully_associative_lru"):
            speedup = results["engines"][name]["speedup"]
            assert speedup >= floor, (
                f"{name}: {speedup}x < required {floor}x vs reference"
            )
        print(f"speedup floor {floor}x: OK")

    # Symbolic trace synthesis vs the executed tracer, over the fig6sim
    # grid (both algorithms x all six paper layouts): same byte streams
    # (asserted), wall-clock dominated by event generation + expansion.
    synth_grid = [
        (alg, lay) for alg in ("standard", "strassen") for lay in PAPER_LAYOUTS
    ]
    synth_n, synth_tile = 48, 8

    def run_executed():
        total = 0
        for alg, lay in synth_grid:
            events, sizes = trace_multiply(alg, lay, synth_n, synth_tile)
            total += expand_trace(events, mach, sizes).size
        return total

    def run_synthesized():
        n_events = 0
        digests = []
        for alg, lay in synth_grid:
            table, sizes = synthesize_multiply(alg, lay, synth_n, synth_tile)
            n_events += table.n_events
            digests.append(expand_table(table, mach, sizes))
        return n_events, digests

    executed_seconds, _ = timed(run_executed, repeats=2)
    synth_seconds, (synth_events, synth_streams) = timed(run_synthesized, repeats=2)
    for (alg, lay), got in zip(synth_grid[:2], synth_streams[:2]):
        events, sizes = trace_multiply(alg, lay, synth_n, synth_tile)
        assert np.array_equal(got, expand_trace(events, mach, sizes)), (
            f"synthesized trace diverged from executed for {alg}/{lay}"
        )
    synth_speedup = executed_seconds / synth_seconds
    results["trace_synthesis"] = {
        "grid": [f"{alg}/{lay}" for alg, lay in synth_grid],
        "n": synth_n,
        "tile": synth_tile,
        "events": synth_events,
        "events_per_sec": round(synth_events / synth_seconds),
        "executed_seconds": round(executed_seconds, 3),
        "synthesized_seconds": round(synth_seconds, 3),
        "speedup": round(synth_speedup, 2),
    }
    print(
        f"trace synthesis (fig6sim grid, {len(synth_grid)} points): "
        f"executed {executed_seconds:.3f}s, synthesized {synth_seconds:.3f}s, "
        f"{synth_speedup:.2f}x, "
        f"{results['trace_synthesis']['events_per_sec']:,d} events/s"
    )
    synth_floor = float(os.environ.get("SMOKE_SYNTHESIS_FLOOR", "5"))
    assert synth_speedup >= synth_floor, (
        f"trace synthesis: {synth_speedup:.2f}x < required {synth_floor}x "
        f"vs executed tracer"
    )
    print(f"trace synthesis speedup floor {synth_floor}x: OK")

    # Parallel sweep executor: serial vs process-pool wall time over a
    # warm-cache fig4 sweep (the trace store is pre-warmed so both runs
    # pay identical simulation cost and the ratio isolates the pool).
    sweep_jobs = int(os.environ.get("SMOKE_JOBS", "4"))
    cpus = os.cpu_count() or 1
    points = fig4_points(
        n=96, tiles=(4, 8, 16, 32), algorithm="standard", layout="LZ",
        repeats=1, machine=mach, include_memsim=True,
    )
    run_sweep(points, jobs=1)  # warm the store
    t0 = time.perf_counter()
    serial_rows = run_sweep(points, jobs=1)
    serial_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel_rows = run_sweep(points, jobs=sweep_jobs)
    parallel_seconds = time.perf_counter() - t0
    sim_keys = ("n", "tile", "sim_cycles", "sim_cycles_per_flop", "l1_miss_rate")
    assert [{k: r[k] for k in sim_keys} for r in serial_rows] == [
        {k: r[k] for k in sim_keys} for r in parallel_rows
    ], "parallel sweep diverged from serial on simulated fields"
    sweep_speedup = serial_seconds / parallel_seconds
    results["parallel_sweep"] = {
        "figure": "fig4",
        "n": 96,
        "tiles": [p.kwargs()["tile"] for p in points],
        "jobs": sweep_jobs,
        "cpu_count": cpus,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(sweep_speedup, 2),
    }
    print(
        f"parallel sweep (fig4, jobs={sweep_jobs}, {cpus} cpus): "
        f"serial {serial_seconds:.3f}s, parallel {parallel_seconds:.3f}s, "
        f"{sweep_speedup:.2f}x"
    )
    if cpus >= 4 and sweep_jobs >= 4:
        assert sweep_speedup >= 2.0, (
            f"parallel sweep speedup {sweep_speedup:.2f}x < required 2x "
            f"at jobs={sweep_jobs} on {cpus} CPUs"
        )
        print("parallel sweep speedup floor 2x: OK")
    else:
        print(f"parallel sweep speedup floor skipped ({cpus} CPUs)")

    # Multi-config simulation: one reuse-distance profile vs per-config
    # streaming replay over a 16-machine associativity/TLB grid (all in
    # one set family, so a single build answers every member).  The
    # profile answers must equal the streaming simulators' exactly.
    mc_machines = [
        assoc_scaled(l1_assoc=l1a, l2_assoc=l2a, tlb_entries=tlb)
        for l1a in (1, 2, 4, 8)
        for l2a in (1, 4)
        for tlb in (8, 32)
    ]
    mc_n, mc_tile = 64, 8
    mc_addresses = cached_multiply_trace(
        "standard", "LZ", mc_n, mc_tile, mc_machines[0], store=store
    )

    def run_replay():
        return [simulate_hierarchy(mc_addresses, m) for m in mc_machines]

    def run_profiled():
        prof = build_profile(mc_addresses, mc_machines[0])
        return [prof.query(m) for m in mc_machines]

    replay_seconds, replay_stats = timed(run_replay, repeats=2)
    profiled_seconds, profiled_stats = timed(run_profiled, repeats=2)
    assert profiled_stats == replay_stats, (
        "profile-derived stats diverged from streaming replay"
    )
    mc_speedup = replay_seconds / profiled_seconds
    mc_total_misses = sum(
        s.l1_misses + s.l2_misses + s.tlb_misses for s in profiled_stats
    )
    results["multiconfig"] = {
        "configs": len(mc_machines),
        "n": mc_n,
        "tile": mc_tile,
        "accesses": int(mc_addresses.size),
        "replay_seconds": round(replay_seconds, 3),
        "profiled_seconds": round(profiled_seconds, 3),
        "speedup": round(mc_speedup, 2),
        "total_misses": int(mc_total_misses),
    }
    print(
        f"multiconfig ({len(mc_machines)} configs, {mc_addresses.size:,d} "
        f"accesses): replay {replay_seconds:.3f}s, profiled "
        f"{profiled_seconds:.3f}s, {mc_speedup:.2f}x"
    )
    mc_floor = float(os.environ.get("SMOKE_MULTICONFIG_FLOOR", "3"))
    assert mc_speedup >= mc_floor, (
        f"multiconfig: {mc_speedup:.2f}x < required {mc_floor}x vs "
        f"per-config replay"
    )
    print(f"multiconfig speedup floor {mc_floor}x: OK")

    results["trace_cache"].update(store.counters())
    results["provenance"] = build_manifest(
        command="perf_smoke", store=store, machine=mach
    )
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    if args.append_history:
        append_history(results, history_dir=args.history_dir)


if __name__ == "__main__":
    main()
