#!/usr/bin/env python
"""Repo-specific AST lint: invariants a generic linter cannot express.

Rules
-----

I1  The scalar reference cache simulators (``simulate_lru``,
    ``LRUCache``) must not be *called* outside the cache module itself,
    the vectorized engines that validate against them, tests, and the
    perf smoke script.  Everything else must go through the vectorized
    engines (:mod:`repro.memsim.engines`) — a scalar simulator call on a
    hot path silently turns an O(n) sweep into hours.

I2  ``np.argsort`` / ``np.sort`` in order-sensitive modules
    (``repro.memsim``, ``repro.sanitize``) must pass ``kind="stable"``.
    These modules reconstruct per-line / per-region access runs from
    sorted program order; an unstable sort reorders equal keys and
    corrupts ownership-transition and race-pair counts
    nondeterministically.

Usage::

    python scripts/lint_invariants.py [repo_root]

Exits non-zero iff any violation is found.  Run by CI next to ruff.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Files allowed to call the scalar reference simulators (I1).
SCALAR_SIM_ALLOWED = {
    Path("src/repro/memsim/cache.py"),
    Path("src/repro/memsim/engines.py"),
    Path("scripts/perf_smoke.py"),
}
SCALAR_SIM_ALLOWED_DIRS = (Path("tests"), Path("benchmarks"))
SCALAR_SIM_NAMES = {"simulate_lru", "LRUCache"}

#: Directories whose sorts must be stable (I2).
STABLE_SORT_DIRS = (Path("src/repro/memsim"), Path("src/repro/sanitize"))
STABLE_SORT_FUNCS = {"argsort", "sort"}
NUMPY_MODULE_NAMES = {"np", "numpy"}


def _is_under(path: Path, dirs) -> bool:
    return any(d == path or d in path.parents for d in dirs)


def _called_name(call: ast.Call) -> str | None:
    """Trailing identifier of the called expression, if recognizable."""
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return None


def _is_numpy_attr_call(call: ast.Call) -> bool:
    fn = call.func
    return (
        isinstance(fn, ast.Attribute)
        and isinstance(fn.value, ast.Name)
        and fn.value.id in NUMPY_MODULE_NAMES
    )


def _has_stable_kind(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "kind":
            return isinstance(kw.value, ast.Constant) and kw.value.value == "stable"
    return False


def lint_file(root: Path, rel: Path) -> list[str]:
    """All violations in one file, as ``path:line: message`` strings."""
    try:
        tree = ast.parse((root / rel).read_text(), filename=str(rel))
    except SyntaxError as exc:
        return [f"{rel}:{exc.lineno or 0}: I0 syntax error: {exc.msg}"]

    problems: list[str] = []
    check_scalar_sim = not (
        rel in SCALAR_SIM_ALLOWED or _is_under(rel, SCALAR_SIM_ALLOWED_DIRS)
    )
    check_stable_sort = _is_under(rel, STABLE_SORT_DIRS)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _called_name(node)
        if check_scalar_sim and name in SCALAR_SIM_NAMES:
            problems.append(
                f"{rel}:{node.lineno}: I1 call to scalar reference "
                f"simulator {name}() outside the cache/engines/tests "
                f"allowlist; use repro.memsim.engines instead"
            )
        if (
            check_stable_sort
            and name in STABLE_SORT_FUNCS
            and _is_numpy_attr_call(node)
            and not _has_stable_kind(node)
        ):
            problems.append(
                f"{rel}:{node.lineno}: I2 np.{name} without kind=\"stable\" "
                f"in an order-sensitive module; equal keys must keep "
                f"program order"
            )
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    problems: list[str] = []
    for sub in ("src", "scripts", "benchmarks"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            problems.extend(lint_file(root, path.relative_to(root)))
    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} invariant violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
