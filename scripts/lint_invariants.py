#!/usr/bin/env python
"""Back-compat shim over :mod:`repro.lint`.

.. deprecated::
    The repo-specific AST lint now lives in the importable, unit-tested
    :mod:`repro.lint` package (rules I1-I5, registry, JSON reporter) and
    is surfaced as ``python -m repro lint``.  This script remains only
    so existing CI invocations of ``python scripts/lint_invariants.py``
    keep working; it delegates straight to :func:`repro.lint.main` with
    identical exit semantics (non-zero iff violations).

Usage::

    python scripts/lint_invariants.py [repo_root]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
